//! The flash based secondary disk cache (§3, §5).
//!
//! [`FlashCache`] manages a [`nand_flash::FlashDevice`] as a disk cache:
//! a read region and a write region (or one unified pool), out-of-place
//! writes, background garbage collection, wear-level-aware replacement,
//! and the programmable controller's per-page ECC/density
//! reconfiguration. Disk traffic (miss fetches and dirty flushes) is
//! *reported* to the caller rather than simulated here, so the same cache
//! drives both the trace simulator and the full-system model.

use std::collections::VecDeque;
use std::sync::Arc;

use flash_obs::{Event, ObsSink, Registry, ServiceTier};
use nand_flash::{BlockId, CellMode, FlashDevice, OpContext, PageAddr};

use crate::admission::{build_policy, AdmissionPolicy, Longevity};
use crate::config::{ConfigError, ControllerPolicy, FlashCacheConfig, SplitPolicy};
use crate::error::CacheError;
use crate::reclaim::ReclaimIndex;
use crate::stats::CacheStats;
use crate::tables::{Fbst, Fcht, Fgst, Fpst, RegionKind};

/// What one [`CacheOp`] asks the cache to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOpKind {
    /// Look up (and on a miss, fill) a disk page.
    Read,
    /// Write a disk page out-of-place into the write region.
    Write,
}

/// One typed request against the cache: the unified entry point that
/// replaces the `read`/`write`/`try_read`/`try_write` sprawl. Build
/// with [`CacheOp::read`]/[`CacheOp::write`] and submit through
/// [`FlashCache::op`] or [`FlashCache::try_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOp {
    /// The disk page (logical block address) being accessed.
    pub lba: u64,
    /// Read or write.
    pub kind: CacheOpKind,
    /// Device-op context forwarded to the timing backend. The cache
    /// stamps `lba` onto it; callers only need a non-default context
    /// to mark background traffic.
    pub ctx: OpContext,
}

impl CacheOp {
    /// A foreground read of `lba`.
    pub fn read(lba: u64) -> Self {
        CacheOp {
            lba,
            kind: CacheOpKind::Read,
            ctx: OpContext::foreground(),
        }
    }

    /// A foreground write of `lba`.
    pub fn write(lba: u64) -> Self {
        CacheOp {
            lba,
            kind: CacheOpKind::Write,
            ctx: OpContext::foreground(),
        }
    }

    /// Overrides the device-op context.
    pub fn with_ctx(mut self, ctx: OpContext) -> Self {
        self.ctx = ctx;
        self
    }
}

/// What the admission stage decided about one [`CacheOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionDecision {
    /// The op never reached the admission stage (flash read hit, or a
    /// degraded internal-error outcome).
    #[default]
    NotApplicable,
    /// The policy admitted the fill/write into flash.
    Admitted,
    /// The policy kept the page out; the caller serves it from disk.
    Rejected,
    /// A write was absorbed by an already-dirty cached copy without a
    /// reprogram (dirty-page coalescing).
    Coalesced,
}

/// Result of one [`CacheOp`]: the access outcome plus what the
/// admission stage decided.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheOutcome {
    /// The access outcome (hit/tier/latency/disk obligations) — the
    /// same contract as the legacy entry points returned.
    pub access: AccessOutcome,
    /// The admission stage's decision for this op.
    pub admission: AdmissionDecision,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessOutcome {
    /// The request hit in flash.
    pub hit: bool,
    /// The tier that serviced the access: [`ServiceTier::Flash`] on a
    /// hit, [`ServiceTier::Disk`] when the caller must go to disk.
    pub tier: ServiceTier,
    /// Critical-path latency contributed by flash + ECC, µs. On a miss
    /// this is near zero; the caller adds its disk model's penalty.
    /// Includes `queue_wait_us`.
    pub latency_us: f64,
    /// Device queueing delay inside `latency_us`, µs. Exactly zero
    /// under the closed-form timing backend; under the event-driven
    /// backend it is the time the flash read spent waiting out
    /// in-flight channel traffic.
    pub queue_wait_us: f64,
    /// Off-critical-path flash work this access triggered (fills,
    /// migrations), µs. GC/eviction work is tracked separately in
    /// [`CacheStats::gc_time_us`].
    pub background_us: f64,
    /// The caller must fetch the page from disk.
    pub needs_disk_read: bool,
    /// Dirty pages this access forced out; the caller owes these disk
    /// writes.
    pub flushed_dirty: u32,
    /// The access hit a page whose accumulated bit errors exceeded its
    /// ECC strength — the cached copy was lost.
    pub uncorrectable: bool,
    /// The cache could not allocate space (device worn out); the access
    /// went straight to disk.
    pub bypassed: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenBlock {
    pub(crate) id: BlockId,
    pub(crate) next_slot: u32,
}

/// Allocation state of one region.
#[derive(Debug)]
pub(crate) struct Region {
    pub(crate) free: VecDeque<BlockId>,
    /// Open blocks, one per longevity bucket (index = bucket). The
    /// read region and unbucketed write regions have exactly one.
    pub(crate) open: Vec<Option<OpenBlock>>,
    /// Block reserved as the GC compaction destination.
    pub(crate) spare: Option<BlockId>,
    /// Live pages across the region (for the GC watermark).
    pub(crate) valid_pages: u64,
    /// Invalidated-but-not-erased pages across the region.
    pub(crate) invalid_pages: u64,
}

impl Region {
    fn new(buckets: usize) -> Self {
        Region {
            free: VecDeque::new(),
            open: vec![None; buckets.max(1)],
            spare: None,
            valid_pages: 0,
            invalid_pages: 0,
        }
    }
}

/// The hardware-assisted, software-managed flash disk cache.
///
/// # Examples
///
/// ```
/// use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
///
/// let mut cache = FlashCache::new(FlashCacheConfig::default()).unwrap();
/// let first = cache.op(CacheOp::read(42));
/// assert!(!first.access.hit && first.access.needs_disk_read);
/// let second = cache.op(CacheOp::read(42));
/// assert!(second.access.hit);
/// ```
#[derive(Debug)]
pub struct FlashCache {
    pub(crate) config: FlashCacheConfig,
    pub(crate) device: FlashDevice,
    pub(crate) fcht: Fcht,
    pub(crate) fpst: Fpst,
    pub(crate) fbst: Fbst,
    pub(crate) fgst: Fgst,
    /// Incremental victim-selection index over the FBST (GC, eviction,
    /// wear levelling), kept in lock-step by [`FlashCache::reclaim_sync`].
    pub(crate) reclaim: ReclaimIndex,
    /// ECC strength the *current content* of each slot was encoded with
    /// (configured strength applies from the next program, §5.2).
    pub(crate) live_strength: Vec<u8>,
    pub(crate) read_region: Region,
    pub(crate) write_region: Region,
    pub(crate) unified: bool,
    /// Logical clock for LRU.
    pub(crate) tick: u64,
    /// Access-counter decay period (`counter_decay_interval` with its
    /// `0 = one device's worth of slots` default resolved).
    pub(crate) decay_interval: u64,
    /// Ops until the next decay epoch; a countdown avoids a `tick %
    /// interval` division on every access.
    pub(crate) decay_countdown: u64,
    /// Usable (non-retired) slots.
    pub(crate) usable_slots: u64,
    /// Per-operation accumulators, reset at the start of each access.
    pub(crate) op_flushed: u32,
    pub(crate) op_background_us: f64,
    /// Admission policy gating fills and host writes (boxed: the three
    /// shipped policies carry very different state).
    pub(crate) admission: Box<dyn AdmissionPolicy>,
    /// Longevity predictor routing admitted writes to buckets.
    pub(crate) longevity: Longevity,
    /// Host writes programmed per write-region longevity bucket.
    pub(crate) longevity_writes: Vec<u64>,
    pub(crate) stats: CacheStats,
    /// Attached observability sink (trace events + metric flushing).
    pub(crate) sink: Option<Arc<ObsSink>>,
    /// Guards the Drop-time metric flush against double counting.
    pub(crate) obs_flushed: bool,
}

impl FlashCache {
    /// Builds the cache, partitioning the device's blocks between the
    /// read and write regions per the split policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(config: FlashCacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let device = FlashDevice::new(config.flash);
        let geometry = *device.geometry();
        let blocks = geometry.blocks;
        let write_blocks = match config.split {
            SplitPolicy::Unified => 0,
            SplitPolicy::Split { write_fraction } => {
                ((blocks as f64 * write_fraction).round() as u32).clamp(2, blocks - 2)
            }
        };
        let unified = matches!(config.split, SplitPolicy::Unified);
        // Write region takes the tail block ids.
        let first_write = blocks - write_blocks;
        let initial_slc = if config.default_mode == CellMode::Slc {
            geometry.pages_per_block
        } else {
            0
        };
        let fbst = Fbst::new(
            blocks,
            geometry.slots_per_block(),
            config.initial_ecc,
            initial_slc,
            |b| {
                if !unified && b.0 >= first_write {
                    RegionKind::Write
                } else {
                    RegionKind::Read
                }
            },
        );
        let fpst = Fpst::new(geometry, config.initial_ecc, config.default_mode);
        // Longevity buckets apply to the write region only; clamp so every
        // bucket can hold an open block (write_blocks >= 2 in split mode).
        let wbuckets = if unified {
            1
        } else {
            (config.longevity_buckets.max(1)).min(write_blocks.max(1)) as usize
        };
        let mut read_region = Region::new(1);
        let mut write_region = Region::new(wbuckets);
        for b in 0..first_write {
            read_region.free.push_back(BlockId(b));
        }
        for b in first_write..blocks {
            write_region.free.push_back(BlockId(b));
        }
        // Reserve one spare per active region for GC compaction.
        read_region.spare = read_region.free.pop_back();
        if !unified {
            write_region.spare = write_region.free.pop_back();
        }
        let usable_slots = geometry.total_slots();
        let decay_interval = if config.counter_decay_interval == 0 {
            usable_slots.max(1)
        } else {
            config.counter_decay_interval
        };
        // One mapping per slot at most: sized so lookups never rehash.
        let mut fcht = Fcht::with_capacity(usable_slots as usize);
        fcht.set_swar_probe(config.fcht_swar_probe);
        Ok(FlashCache {
            live_strength: vec![config.initial_ecc; usable_slots as usize],
            device,
            fcht,
            fpst,
            fbst,
            fgst: Fgst::default(),
            reclaim: ReclaimIndex::new(blocks, geometry.slots_per_block()),
            read_region,
            write_region,
            unified,
            tick: 0,
            decay_interval,
            decay_countdown: decay_interval,
            usable_slots,
            op_flushed: 0,
            op_background_us: 0.0,
            admission: build_policy(&config.admission),
            longevity: Longevity::new(wbuckets as u32, decay_interval),
            longevity_writes: vec![0; wbuckets],
            stats: CacheStats::default(),
            sink: flash_obs::global_sink(),
            obs_flushed: false,
            config,
        })
    }

    /// Attaches an observability sink, replacing the process-global one
    /// picked up at construction (if any). Trace events flow to the sink
    /// as they happen; metrics are flushed on [`FlashCache::flush_obs`]
    /// or drop.
    pub fn attach_sink(&mut self, sink: Arc<ObsSink>) {
        self.sink = Some(sink);
        self.obs_flushed = false;
    }

    /// The attached sink, if any.
    pub fn sink(&self) -> Option<&Arc<ObsSink>> {
        self.sink.as_ref()
    }

    /// Records a trace event into the attached sink (no-op otherwise).
    #[inline]
    pub(crate) fn emit(&self, ev: Event) {
        if let Some(s) = &self.sink {
            s.emit(ev);
        }
    }

    /// Exports the cache's counters and gauges as a metrics registry
    /// under the `flash.*` (cache) and `nand.*` (device) prefixes.
    ///
    /// Time/energy accumulators are exported as integer-µs/µJ counters
    /// so that registries from successive caches merge additively.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = Registry::new();
        let s = &self.stats;
        let c: &[(&str, u64)] = &[
            ("flash.reads", s.reads),
            ("flash.read_hits", s.read_hits),
            ("flash.read_misses", s.reads - s.read_hits),
            ("flash.writes", s.writes),
            ("flash.write_hits", s.write_hits),
            ("flash.flash_reads", s.flash_reads),
            ("flash.flash_programs", s.flash_programs),
            ("flash.erases", s.erases),
            ("flash.gc_runs", s.gc_runs),
            ("flash.gc_moved_pages", s.gc_moved_pages),
            ("flash.evictions", s.evictions),
            ("flash.flushed_dirty_pages", s.flushed_dirty_pages),
            ("flash.wear_migrations", s.wear_migrations),
            ("flash.reconfig_ecc", s.reconfig_ecc),
            ("flash.reconfig_density", s.reconfig_density),
            ("flash.hot_promotions", s.hot_promotions),
            ("flash.uncorrectable_reads", s.uncorrectable_reads),
            ("flash.internal_errors", s.internal_errors),
            ("flash.retired_blocks", s.retired_blocks),
            ("flash.gc_time_us", s.gc_time_us.round() as u64),
            ("flash.foreground_us", s.foreground_us.round() as u64),
            ("flash.background_us", s.background_us.round() as u64),
            ("flash.ecc_us", s.ecc_us.round() as u64),
            ("flash.reclaim.index_queries", s.reclaim_index_queries),
            ("flash.reclaim.index_hits", s.reclaim_index_hits),
            ("flash.reclaim.scan_fallbacks", s.reclaim_scan_fallbacks),
            ("flash.reclaim.index_skips", self.reclaim.skips()),
            ("flash.admission.rejected_fills", s.admission_rejected_fills),
            (
                "flash.admission.rejected_writes",
                s.admission_rejected_writes,
            ),
            (
                "flash.admission.coalesced_writes",
                s.admission_coalesced_writes,
            ),
            ("flash.admission.bytes_written", s.admission_bytes_written),
            ("flash.fcht.probe_groups", self.fcht.probe_groups()),
        ];
        for (name, v) in c {
            // Pre-resolved handle + indexed add: the export burst does
            // its string work exactly once per name.
            let id = reg.handle(name);
            reg.add(id, *v);
        }
        let d = self.device.stats();
        let n: &[(&str, u64)] = &[
            ("nand.reads", d.reads),
            ("nand.programs", d.programs),
            ("nand.erases", d.erases),
            ("nand.bit_errors", d.bit_errors),
            ("nand.busy_us", d.busy_us.round() as u64),
            ("nand.wait_us", d.wait_us.round() as u64),
            ("nand.energy_uj", (d.energy_mj * 1000.0).round() as u64),
        ];
        for (name, v) in n {
            let id = reg.handle(name);
            reg.add(id, *v);
        }
        reg.gauge_set("flash.cached_pages", self.cached_pages() as f64);
        reg.gauge_set("flash.usable_slots", self.usable_slots as f64);
        reg.gauge_set("flash.slc_fraction", self.slc_fraction());
        reg.gauge_set("flash.miss_rate", self.fgst.miss_rate);
        // Longest probe is a high-water mark, not additive: exported as
        // a gauge so merging shard registries keeps the (overwritten)
        // last value rather than a meaningless sum.
        reg.gauge_set("flash.fcht.max_probe_len", self.fcht.max_probe_len() as f64);
        // Longevity metrics appear only when placement is actually
        // bucketed, mirroring the shard-prefix discipline: the default
        // single-bucket registry stays byte-identical to pre-admission
        // exports.
        if self.longevity_writes.len() > 1 {
            reg.gauge_set(
                "flash.longevity.buckets",
                self.longevity_writes.len() as f64,
            );
            for (i, &w) in self.longevity_writes.iter().enumerate() {
                let id = reg.handle(&format!("flash.longevity.bucket.{i}.writes"));
                reg.add(id, w);
            }
        }
        reg
    }

    /// Flushes the exported metrics into the attached sink's registry.
    /// Called automatically on drop; idempotent until new accesses occur
    /// (the guard re-arms only via [`FlashCache::attach_sink`]).
    pub fn flush_obs(&mut self) {
        if self.obs_flushed {
            return;
        }
        if let Some(s) = &self.sink {
            s.merge_registry(&self.export_metrics());
            self.obs_flushed = true;
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FlashCacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics (cache contents and wear are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.device.reset_stats();
    }

    /// The underlying device (for power/wear inspection).
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    /// Mutable access to the underlying device (for draining the event
    /// timeline at end of run).
    pub fn device_mut(&mut self) -> &mut FlashDevice {
        &mut self.device
    }

    /// Global status table snapshot.
    pub fn fgst(&self) -> Fgst {
        self.fgst
    }

    /// Logical access clock.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of cached disk pages.
    pub fn cached_pages(&self) -> u64 {
        self.fcht.len() as u64
    }

    /// `true` if `disk_page` is currently cached.
    pub fn contains(&self, disk_page: u64) -> bool {
        self.fcht.lookup(disk_page).is_some()
    }

    /// Usable (non-retired) slot count.
    pub fn usable_slots(&self) -> u64 {
        self.usable_slots
    }

    /// `true` once every block has been retired — the paper's "point of
    /// total Flash failure" (Figure 12).
    pub fn is_dead(&self) -> bool {
        self.usable_slots == 0
    }

    /// Fraction of non-retired physical pages currently configured in
    /// SLC mode (the quantity optimized in Figure 7).
    pub fn slc_fraction(&self) -> f64 {
        let mut slc = 0u64;
        let mut total = 0u64;
        for (b, s) in self.fbst.iter() {
            if s.retired {
                continue;
            }
            slc += s.slc_pages as u64;
            total += self.device.geometry().pages_per_block as u64;
            let _ = b;
        }
        if total == 0 {
            0.0
        } else {
            slc as f64 / total as f64
        }
    }

    /// Number of invalidated-but-not-yet-erased pages in `block`
    /// (Figure 3's GC-candidate criterion).
    pub fn block_invalid_pages(&self, block: nand_flash::BlockId) -> u32 {
        self.fbst.get(block).invalid_pages
    }

    /// The region `block` currently serves.
    pub fn block_region(&self, block: nand_flash::BlockId) -> RegionKind {
        self.fbst.get(block).region
    }

    /// Erase-count spread `(min, max, mean)` over non-retired blocks —
    /// the wear-levelling quality metric used by the ablation benches.
    pub fn erase_spread(&self) -> (u64, u64, f64) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut n = 0u64;
        for b in self.device.geometry().iter_blocks() {
            if self.fbst.get(b).retired {
                continue;
            }
            let e = self.device.erase_count(b);
            min = min.min(e);
            max = max.max(e);
            sum += e;
            n += 1;
        }
        if n == 0 {
            (0, 0, 0.0)
        } else {
            (min, max, sum as f64 / n as f64)
        }
    }

    fn gidx(&self, addr: PageAddr) -> usize {
        addr.block.0 as usize * self.device.geometry().slots_per_block() as usize
            + addr.slot as usize
    }

    fn region_kind_of(&self, addr: PageAddr) -> RegionKind {
        self.fbst.get(addr.block).region
    }

    pub(crate) fn region_mut(&mut self, kind: RegionKind) -> &mut Region {
        if self.unified || kind == RegionKind::Read {
            &mut self.read_region
        } else {
            &mut self.write_region
        }
    }

    pub(crate) fn region(&self, kind: RegionKind) -> &Region {
        if self.unified || kind == RegionKind::Read {
            &self.read_region
        } else {
            &self.write_region
        }
    }

    /// Index of the last (longest-lived) longevity bucket of `kind`'s
    /// region. The read region always has exactly one bucket.
    pub(crate) fn top_bucket(&self, kind: RegionKind) -> u32 {
        (self.region(kind).open.len() - 1) as u32
    }

    /// Reconciles the reclaim index with `b`'s FBST state. Call after
    /// any change to the block's valid/invalid counts, retirement, or a
    /// wear-cost component (`erase_count`/`total_ecc`/`slc_pages`).
    pub(crate) fn reclaim_sync(&mut self, b: BlockId) {
        let s = *self.fbst.get(b);
        let cost = self
            .fbst
            .wear_out(b, self.config.wear_k1, self.config.wear_k2);
        self.reclaim
            .sync(b, s.region, s.valid_pages, s.invalid_pages, s.retired, cost);
    }

    /// Marks `b` most recently used in the reclaim index's block LRU.
    /// Call wherever the FBST's `last_access` is stamped.
    pub(crate) fn reclaim_touch(&mut self, b: BlockId) {
        self.reclaim.touch(b);
    }

    fn begin_op(&mut self) {
        self.tick += 1;
        self.op_flushed = 0;
        self.op_background_us = 0.0;
        self.decay_countdown -= 1;
        if self.decay_countdown == 0 {
            self.decay_countdown = self.decay_interval;
            // O(1): pages fold the pending halving lazily on next touch.
            self.fpst.advance_decay_epoch();
        }
    }

    fn finish(&mut self, mut outcome: AccessOutcome) -> AccessOutcome {
        outcome.flushed_dirty = self.op_flushed;
        outcome.background_us = self.op_background_us;
        self.stats.foreground_us += outcome.latency_us;
        self.stats.background_us += outcome.background_us;
        outcome
    }

    /// Degrades an internal error into the fail-to-disk outcome used by
    /// the infallible entry points: corruption-class errors surface as
    /// `uncorrectable`, and the access bypasses the cache entirely.
    fn degraded_outcome(&mut self, e: &CacheError, is_read: bool) -> AccessOutcome {
        self.stats.internal_errors += 1;
        AccessOutcome {
            hit: false,
            tier: ServiceTier::Disk,
            needs_disk_read: is_read,
            uncorrectable: e.is_corruption(),
            bypassed: true,
            ..AccessOutcome::default()
        }
    }

    /// Services `op` through the unified pipeline (§5.1 read/write
    /// paths with the admission stage in front).
    ///
    /// Infallible wrapper over [`FlashCache::try_op`]: an internal
    /// [`CacheError`] is degraded into a bypassed, disk-bound outcome
    /// (with `uncorrectable` set for corruption-class errors) and
    /// counted in [`CacheStats::internal_errors`].
    pub fn op(&mut self, op: CacheOp) -> CacheOutcome {
        match self.try_op(op) {
            Ok(out) => out,
            Err(e) => CacheOutcome {
                access: self.degraded_outcome(&e, op.kind == CacheOpKind::Read),
                admission: AdmissionDecision::NotApplicable,
            },
        }
    }

    /// Services `op`, surfacing internal errors as typed
    /// [`CacheError`]s instead of panicking or degrading.
    ///
    /// # Errors
    ///
    /// [`CacheError`] when a management table and the device disagree or
    /// a device operation fails mid-access. The cache aborts the access
    /// at the failure point; the caller should satisfy the request from
    /// disk (reads) or write the dirty data to disk itself (writes).
    pub fn try_op(&mut self, op: CacheOp) -> Result<CacheOutcome, CacheError> {
        match op.kind {
            CacheOpKind::Read => self.op_read(op),
            CacheOpKind::Write => self.op_write(op),
        }
    }

    /// Services a batch of ops, returning one outcome per op in order.
    ///
    /// Semantically this is exactly `ops.iter().map(|&op| self.op(op))`:
    /// ops execute sequentially in their original order, so outcomes,
    /// snapshots, stats, and exported metrics are byte-identical to the
    /// scalar loop for every batch size. What the batch adds is a
    /// software-pipelined *lookup front*: while op `j` executes, the
    /// FCHT lines of op `j + K` are prefetched (a pure hint — see
    /// DESIGN.md §17), overlapping the LLC misses of independent
    /// requests. Gated by [`FlashCacheConfig::batch_pipeline`].
    ///
    /// # Examples
    ///
    /// ```
    /// use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
    ///
    /// let mut cache = FlashCache::new(FlashCacheConfig::default()).unwrap();
    /// let ops = [CacheOp::write(7), CacheOp::read(7), CacheOp::read(9)];
    /// let outs = cache.op_batch(&ops);
    /// assert_eq!(outs.len(), 3);
    /// assert!(outs[1].access.hit); // the write cached page 7
    /// ```
    pub fn op_batch(&mut self, ops: &[CacheOp]) -> Vec<CacheOutcome> {
        let mut out = Vec::with_capacity(ops.len());
        self.op_batch_into(ops, &mut out);
        out
    }

    /// [`FlashCache::op_batch`] into a caller-owned buffer (appended;
    /// not cleared), so hot loops can reuse one allocation.
    pub fn op_batch_into(&mut self, ops: &[CacheOp], out: &mut Vec<CacheOutcome>) {
        out.reserve(ops.len());
        if !self.config.batch_pipeline {
            for &op in ops {
                out.push(self.op(op));
            }
            return;
        }
        // Pipeline window: far enough ahead to cover an LLC miss at
        // replay op rates, small enough that the prefetched lines are
        // still resident when their op executes. Swept 4/8/16/32 on the
        // replay benchmark; 4 was fastest and larger windows only evict
        // their own prefetches.
        const WINDOW: usize = 4;
        for op in ops.iter().take(WINDOW) {
            self.fcht.prefetch(op.lba);
        }
        for (j, &op) in ops.iter().enumerate() {
            if let Some(ahead) = ops.get(j + WINDOW) {
                self.fcht.prefetch(ahead.lba);
            }
            out.push(self.op(op));
        }
    }

    /// Services a read of `disk_page` (§5.1 read path).
    #[deprecated(
        since = "0.9.0",
        note = "use FlashCache::op(CacheOp::read(lba)).access"
    )]
    pub fn read(&mut self, disk_page: u64) -> AccessOutcome {
        self.op(CacheOp::read(disk_page)).access
    }

    /// Services a read of `disk_page`, surfacing internal errors.
    ///
    /// # Errors
    ///
    /// See [`FlashCache::try_op`].
    #[deprecated(
        since = "0.9.0",
        note = "use FlashCache::try_op(CacheOp::read(lba)) and take `.access`"
    )]
    pub fn try_read(&mut self, disk_page: u64) -> Result<AccessOutcome, CacheError> {
        self.try_op(CacheOp::read(disk_page)).map(|o| o.access)
    }

    /// §5.1 read path with the admission gate on the two fill points.
    fn op_read(&mut self, op: CacheOp) -> Result<CacheOutcome, CacheError> {
        let disk_page = op.lba;
        self.begin_op();
        self.stats.reads += 1;
        if let Some(addr) = self.fcht.lookup(disk_page) {
            let live_t = self.live_strength[self.gidx(addr)];
            let out = self
                .device
                .read_page_with(addr, op.ctx.with_lba(disk_page))
                .map_err(|source| CacheError::TableCorruption { addr, source })?;
            self.stats.flash_reads += 1;
            self.fbst.get_mut(addr.block).last_access = self.tick;
            self.reclaim_touch(addr.block);
            let ecc_us = self.config.ecc_latency.decode_us(live_t as usize);
            self.stats.ecc_us += ecc_us;
            // Adding the wait term last keeps the closed-form sum
            // bit-identical (wait is exactly 0.0 there).
            let latency = out.latency_us + ecc_us + out.wait_us;
            if out.raw_bit_errors > live_t as u32 {
                // Cached copy lost: detected by CRC after failed BCH.
                self.stats.uncorrectable_reads += 1;
                self.emit(Event::UncorrectableRead {
                    tick: self.tick,
                    block: addr.block.0,
                    slot: addr.slot,
                    bit_errors: out.raw_bit_errors,
                });
                self.respond_to_errors(addr, out.raw_bit_errors);
                self.drop_valid_page(addr, false);
                // Refill from disk below (fall through to the miss path).
            } else {
                // §5.2.1: react only to errors that fail *consistently* —
                // two consecutive reads at the strength boundary — so a
                // transient soft error cannot cause a permanent
                // reconfiguration.
                if out.raw_bit_errors >= self.fpst.get(addr).ecc_strength as u32 {
                    let streak = {
                        let st = self.fpst.get_mut(addr);
                        st.error_streak = st.error_streak.saturating_add(1);
                        st.error_streak
                    };
                    if streak >= 2 {
                        self.fpst.get_mut(addr).error_streak = 0;
                        self.respond_to_errors(addr, out.raw_bit_errors);
                    }
                } else {
                    self.fpst.get_mut(addr).error_streak = 0;
                }
                let count = self.fpst.bump_access(addr);
                self.maybe_promote_hot(addr, count)?;
                self.stats.read_hits += 1;
                self.fgst.record(true, latency);
                let access = self.finish(AccessOutcome {
                    hit: true,
                    tier: ServiceTier::Flash,
                    latency_us: latency,
                    queue_wait_us: out.wait_us,
                    ..AccessOutcome::default()
                });
                return Ok(CacheOutcome {
                    access,
                    admission: AdmissionDecision::NotApplicable,
                });
            }
            // Uncorrectable hit: account the wasted flash read, then miss.
            self.fgst.record(false, 0.0);
            let (filled, admission) = self.admitted_fill(disk_page)?;
            let access = self.finish(AccessOutcome {
                hit: false,
                tier: ServiceTier::Disk,
                latency_us: latency,
                queue_wait_us: out.wait_us,
                needs_disk_read: true,
                uncorrectable: true,
                bypassed: !filled,
                ..AccessOutcome::default()
            });
            return Ok(CacheOutcome { access, admission });
        }
        // Plain miss: fetch from disk, fill the read cache.
        self.fgst.record(false, 0.0);
        let (filled, admission) = self.admitted_fill(disk_page)?;
        let access = self.finish(AccessOutcome {
            hit: false,
            needs_disk_read: true,
            bypassed: !filled,
            ..AccessOutcome::default()
        });
        Ok(CacheOutcome { access, admission })
    }

    /// Runs the admission gate in front of a read-miss fill. Returns
    /// whether a copy was cached and the decision taken.
    fn admitted_fill(&mut self, disk_page: u64) -> Result<(bool, AdmissionDecision), CacheError> {
        if self.admission.admit_fill(disk_page, self.tick) {
            let filled = self.fill_from_disk(disk_page, RegionKind::Read)?;
            Ok((filled, AdmissionDecision::Admitted))
        } else {
            self.stats.admission_rejected_fills += 1;
            Ok((false, AdmissionDecision::Rejected))
        }
    }

    /// Services a write of `disk_page` (§5.1 write path): always an
    /// out-of-place write into the write region.
    #[deprecated(
        since = "0.9.0",
        note = "use FlashCache::op(CacheOp::write(lba)).access"
    )]
    pub fn write(&mut self, disk_page: u64) -> AccessOutcome {
        self.op(CacheOp::write(disk_page)).access
    }

    /// Services a write of `disk_page`, surfacing internal errors.
    ///
    /// # Errors
    ///
    /// See [`FlashCache::try_op`].
    #[deprecated(
        since = "0.9.0",
        note = "use FlashCache::try_op(CacheOp::write(lba)) and take `.access`"
    )]
    pub fn try_write(&mut self, disk_page: u64) -> Result<AccessOutcome, CacheError> {
        self.try_op(CacheOp::write(disk_page)).map(|o| o.access)
    }

    /// §5.1 write path with the admission gate, dirty-page coalescing,
    /// and longevity-bucketed placement in front of the program.
    fn op_write(&mut self, op: CacheOp) -> Result<CacheOutcome, CacheError> {
        let disk_page = op.lba;
        self.begin_op();
        self.stats.writes += 1;
        let mut hit = false;
        if let Some(addr) = self.fcht.lookup(disk_page) {
            hit = true;
            self.stats.write_hits += 1;
            // Dirty-page coalescing (WriteCap only): an already-dirty
            // cached copy absorbs the overwrite in place — the stale
            // data was never flushed, so updating it owes no program.
            if self.admission.coalesces_dirty_overwrites() && self.fpst.get(addr).dirty {
                self.stats.admission_coalesced_writes += 1;
                self.fgst.record(true, 0.0);
                self.maybe_background_read_gc()?;
                let access = self.finish(AccessOutcome {
                    hit: true,
                    tier: ServiceTier::Flash,
                    ..AccessOutcome::default()
                });
                return Ok(CacheOutcome {
                    access,
                    admission: AdmissionDecision::Coalesced,
                });
            }
            // Invalidate the stale copy (read- or write-region alike);
            // the new data supersedes it, so no flush is owed.
            self.invalidate_for_overwrite(addr);
        }
        let target = if self.unified {
            RegionKind::Read
        } else {
            RegionKind::Write
        };
        let (programmed, admission) = if self.admission.admit_write(disk_page, self.tick) {
            let bucket = if self.unified {
                0
            } else {
                self.longevity.bucket_for_write(disk_page, self.tick)
            };
            let programmed = match self.allocate_slot(target, false, bucket)? {
                Some(addr) => {
                    let lat = self.program_slot(addr, disk_page, true, 0)?;
                    self.op_background_us += lat;
                    self.stats.admission_bytes_written +=
                        self.device.geometry().page_data_bytes as u64;
                    let bi = (bucket as usize).min(self.longevity_writes.len() - 1);
                    self.longevity_writes[bi] += 1;
                    true
                }
                None => false,
            };
            (programmed, AdmissionDecision::Admitted)
        } else {
            // Rejected: the dirty data bypasses flash; the caller owns
            // the disk write (the hierarchy already routes `bypassed`
            // write-backs to disk).
            self.stats.admission_rejected_writes += 1;
            (false, AdmissionDecision::Rejected)
        };
        self.fgst.record(hit, 0.0);
        self.maybe_background_read_gc()?;
        let access = self.finish(AccessOutcome {
            hit,
            tier: if programmed {
                ServiceTier::Flash
            } else {
                ServiceTier::Disk
            },
            bypassed: !programmed,
            ..AccessOutcome::default()
        });
        Ok(CacheOutcome { access, admission })
    }

    /// Marks every dirty page clean and returns how many disk writes the
    /// caller owes — the periodic write-back flush of §5.1.
    pub fn flush_writes(&mut self) -> u64 {
        let mut flushed = 0;
        for b in self.device.geometry().iter_blocks() {
            if self.fbst.get(b).retired {
                continue;
            }
            for slot in 0..self.device.geometry().slots_per_block() {
                let addr = PageAddr::new(b, slot);
                let st = self.fpst.get_mut(addr);
                if st.valid && st.dirty {
                    st.dirty = false;
                    flushed += 1;
                }
            }
        }
        self.stats.flushed_dirty_pages += flushed;
        flushed
    }

    /// Fills `disk_page` into `kind` after a disk fetch. Returns false if
    /// no space could be allocated (worn-out device).
    fn fill_from_disk(&mut self, disk_page: u64, kind: RegionKind) -> Result<bool, CacheError> {
        match self.allocate_slot(kind, false, 0)? {
            Some(addr) => {
                let lat = self.program_slot(addr, disk_page, false, 0)?;
                self.op_background_us += lat;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Programs `addr` with the slot's configured mode/strength and
    /// installs the FCHT mapping. Returns the program + encode latency.
    pub(crate) fn program_slot(
        &mut self,
        addr: PageAddr,
        disk_page: u64,
        dirty: bool,
        access: u8,
    ) -> Result<f64, CacheError> {
        let even = PageAddr::new(addr.block, addr.slot & !1);
        let mode = if addr.is_upper_half() {
            CellMode::Mlc
        } else {
            self.fpst.get(even).mode
        };
        let strength = self.fpst.get(addr).ecc_strength;
        let out = self
            .device
            .program_page_with(
                addr,
                mode,
                None,
                OpContext::background().with_lba(disk_page),
            )
            .map_err(|source| CacheError::ProgramRejected { addr, source })?;
        self.stats.flash_programs += 1;
        let gi = self.gidx(addr);
        self.live_strength[gi] = strength;
        let region = self.region_kind_of(addr);
        {
            let st = self.fpst.get_mut(addr);
            st.valid = true;
            st.dirty = dirty;
            st.error_streak = 0;
        }
        self.fpst.set_disk_page(addr, disk_page);
        self.fpst.set_access_count(addr, access);
        let bs = self.fbst.get_mut(addr.block);
        bs.valid_pages += 1;
        bs.last_access = self.tick;
        self.region_mut(region).valid_pages += 1;
        self.fcht.insert(disk_page, addr);
        self.reclaim_sync(addr.block);
        self.reclaim_touch(addr.block);
        Ok(out.latency_us + self.config.ecc_latency.encode_us(strength as usize))
    }

    /// Invalidates a superseded page (no flush owed).
    fn invalidate_for_overwrite(&mut self, addr: PageAddr) {
        let st = self.fpst.get_mut(addr);
        debug_assert!(st.valid);
        st.valid = false;
        st.dirty = false;
        if let Some(dp) = self.fpst.take_disk_page(addr) {
            self.fcht.remove(dp);
        }
        let region = self.region_kind_of(addr);
        let bs = self.fbst.get_mut(addr.block);
        bs.valid_pages -= 1;
        bs.invalid_pages += 1;
        let r = self.region_mut(region);
        r.valid_pages -= 1;
        r.invalid_pages += 1;
        self.reclaim_sync(addr.block);
    }

    /// Drops a live page, flushing it to disk first if it was dirty
    /// (`flush` may be false when the content is known lost/uncorrectable).
    pub(crate) fn drop_valid_page(&mut self, addr: PageAddr, flush: bool) {
        let st = self.fpst.get_mut(addr);
        if !st.valid {
            return;
        }
        let was_dirty = st.dirty;
        st.valid = false;
        st.dirty = false;
        if let Some(dp) = self.fpst.take_disk_page(addr) {
            self.fcht.remove(dp);
        }
        if was_dirty && flush {
            self.op_flushed += 1;
            self.stats.flushed_dirty_pages += 1;
        }
        let region = self.region_kind_of(addr);
        let bs = self.fbst.get_mut(addr.block);
        bs.valid_pages -= 1;
        bs.invalid_pages += 1;
        let r = self.region_mut(region);
        r.valid_pages -= 1;
        r.invalid_pages += 1;
        self.reclaim_sync(addr.block);
    }

    /// §5.2.2: a saturated read counter promotes a hot MLC page to SLC.
    fn maybe_promote_hot(&mut self, addr: PageAddr, count: u8) -> Result<(), CacheError> {
        if count != self.config.hot_threshold {
            return Ok(());
        }
        if !matches!(
            self.config.controller,
            ControllerPolicy::Programmable | ControllerPolicy::DensityOnly
        ) {
            return Ok(());
        }
        let Some(phys_mode) = self.device.physical_mode(addr) else {
            // A hit page must be programmed; the device disagreeing with
            // the FPST is table corruption.
            return Err(CacheError::TableCorruption {
                addr,
                source: nand_flash::FlashOpError::NotProgrammed(addr),
            });
        };
        if phys_mode != CellMode::Mlc {
            return Ok(());
        }
        let kind = self.region_kind_of(addr);
        let st = *self.fpst.get(addr);
        let disk_page = self
            .fpst
            .disk_page(addr)
            .ok_or(CacheError::MappingMissing { addr })?;
        // Invalidate *before* allocating: allocation may trigger GC, which
        // must not relocate the page we are about to migrate ourselves.
        self.invalidate_for_overwrite(addr);
        let Some(dst) = self.allocate_slot(kind, true, self.top_bucket(kind))? else {
            // Promotion failed for lack of space; the page falls out of
            // the cache (its content was just served, and a dirty copy
            // still owes a disk write).
            if st.dirty {
                self.op_flushed += 1;
                self.stats.flushed_dirty_pages += 1;
            }
            return Ok(());
        };
        // Migrate: the page was just read; program the copy in SLC mode.
        let lat = self.program_slot(dst, disk_page, st.dirty, self.config.hot_threshold)?;
        self.op_background_us += lat;
        self.stats.hot_promotions += 1;
        self.stats.reconfig_density += 1;
        self.emit(Event::HotPromotion {
            tick: self.tick,
            block: dst.block.0,
            slot: dst.slot,
        });
        Ok(())
    }

    /// §5.2.1: reacts to a page whose observed errors reached its
    /// configured strength — raise ECC or demote density, whichever the
    /// Δtcs/Δtd heuristic prefers.
    fn respond_to_errors(&mut self, addr: PageAddr, errors: u32) {
        let cfg_t = self.fpst.get(addr).ecc_strength;
        let even = PageAddr::new(addr.block, addr.slot & !1);
        let phys_mode = self.fpst.get(even).mode;
        let (ecc_possible, slc_possible) = match self.config.controller {
            ControllerPolicy::FixedEcc { .. } => (false, false),
            ControllerPolicy::Programmable => {
                (cfg_t < self.config.max_ecc, phys_mode == CellMode::Mlc)
            }
            ControllerPolicy::EccOnly => (cfg_t < self.config.max_ecc, false),
            ControllerPolicy::DensityOnly => (false, phys_mode == CellMode::Mlc),
        };
        let choose_ecc = match (ecc_possible, slc_possible) {
            (false, false) => return,
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                let freq = (self.fpst.access_count(addr) as f64 / self.config.hot_threshold as f64)
                    .min(1.0);
                let d_code = self.config.ecc_latency.decode_us(cfg_t as usize + 1)
                    - self.config.ecc_latency.decode_us(cfg_t as usize);
                let d_tcs = freq * d_code;
                let model = self.device.timing_model();
                let d_slc = model.read_us(CellMode::Slc) - model.read_us(CellMode::Mlc);
                let d_miss = if self.usable_slots == 0 {
                    0.0
                } else {
                    self.fgst.miss_rate / self.usable_slots as f64
                };
                let t_miss = self.config.disk_latency_us;
                let t_hit = self.fgst.avg_hit_latency_us;
                let d_td = d_miss * (t_miss + t_hit) + freq * d_slc;
                d_tcs <= d_td
            }
        };
        if choose_ecc {
            let new_t = (errors as u8 + 1).max(cfg_t + 1).min(self.config.max_ecc);
            let delta = (new_t - cfg_t) as u32;
            self.fpst.get_mut(addr).ecc_strength = new_t;
            self.fbst.get_mut(addr.block).total_ecc += delta;
            self.reclaim_sync(addr.block);
            self.stats.reconfig_ecc += 1;
            self.emit(Event::EccStrengthBump {
                tick: self.tick,
                block: addr.block.0,
                slot: addr.slot,
                old_strength: cfg_t,
                new_strength: new_t,
            });
        } else {
            // Demote the physical page to SLC at its next program.
            self.fpst.get_mut(even).mode = CellMode::Slc;
            self.fpst.get_mut(even.sibling()).mode = CellMode::Slc;
            self.fbst.get_mut(addr.block).slc_pages += 1;
            self.reclaim_sync(addr.block);
            self.stats.reconfig_density += 1;
            self.emit(Event::DensityMlcToSlc {
                tick: self.tick,
                block: addr.block.0,
                slot: even.slot,
            });
        }
    }

    /// Background read-region GC when invalid pages push valid capacity
    /// below the watermark (§5.1).
    fn maybe_background_read_gc(&mut self) -> Result<(), CacheError> {
        if self.unified {
            return Ok(());
        }
        let r = self.region(RegionKind::Read);
        let occupied = r.valid_pages + r.invalid_pages;
        if occupied == 0 {
            return Ok(());
        }
        let valid_frac = r.valid_pages as f64 / occupied as f64;
        if valid_frac < self.config.read_gc_watermark {
            self.collect_garbage(RegionKind::Read)?;
        }
        Ok(())
    }
}

impl Drop for FlashCache {
    /// Flushes exported metrics into the attached sink, so lifetime and
    /// sweep runs that construct many caches accumulate totals without
    /// explicit bookkeeping.
    fn drop(&mut self) {
        self.flush_obs();
    }
}
