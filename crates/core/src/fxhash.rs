//! Re-export of the vendored FxHash hasher.
//!
//! The hasher itself lives in [`nand_flash::fxhash`] — the lowest crate
//! in the workspace with integer-keyed hot paths (the scheduler's
//! coalescing write buffer, the verified-flash spare store). The
//! cache-layer tables (`Fcht`, `LruTracker`, the PDC dirty map) import
//! it from here, so existing `crate::fxhash::FxHashMap` paths keep
//! working.

pub use nand_flash::fxhash::{FxBuildHasher, FxHashMap, FxHasher};
