//! The software management tables of the flash disk cache (§3):
//! FCHT, FPST, FBST and FGST. In the paper these live in DRAM and are
//! consulted by OS code; their total overhead is under 2% of flash size.

use std::cell::Cell;

use nand_flash::{BlockId, CellMode, FlashGeometry, PageAddr};

/// Which cache region a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Read disk cache (evicts on read misses only).
    Read,
    /// Write disk cache (absorbs out-of-place writes).
    Write,
}

/// Control byte marking a vacant [`Fcht`] bucket. Occupied buckets
/// store a 7-bit hash fragment (high bit clear), so the two cases never
/// collide.
const CTRL_EMPTY: u8 = 0x80;

/// Control bytes probed per SWAR group load.
const GROUP: usize = 8;

/// `0x01` broadcast to every byte lane.
const LSB: u64 = 0x0101_0101_0101_0101;

/// `0x80` broadcast to every byte lane. Because [`CTRL_EMPTY`] is the
/// only control value with the high bit set, `word & MSB` detects empty
/// buckets *exactly* — no verification needed.
const MSB: u64 = 0x8080_8080_8080_8080;

/// Where a probe for a key terminated.
enum Probe {
    /// The key is resident at this bucket.
    Found(usize),
    /// The key is absent; this is the first empty bucket of its chain
    /// (where an insert would place it).
    Vacant(usize),
}

/// FlashCache hash table: disk page → flash page mapping.
///
/// The paper implements this as a hashed fully-associative tag store
/// (~100 hash entries suffice for throughput, §3.1); the lookup-cost
/// question is moot for a software reproduction, so any fully
/// associative map gives the same semantics. This one is tuned for the
/// replay hot path, where the table far outgrows L2 and every probe is
/// a DRAM access. The layout is struct-of-arrays: a byte-per-bucket
/// control array (vacancy + a 7-bit hash fragment — 64 buckets per
/// cache line), a key array, and a packed-location array. A probe
/// streams the control bytes only; the 8-byte key is touched just on a
/// fragment match (1/128 false-positive rate) and the location only on
/// a true hit — instead of striding 16-byte AoS entries through the
/// LLC. Fibonacci hashing on the high product bits, linear probing,
/// and backward-shift deletion instead of tombstones keep churn from
/// degrading probe lengths.
///
/// Probing comes in two gauge-identical flavours, selected by
/// [`Fcht::set_swar_probe`]: the default SWAR probe loads eight control
/// bytes per `u64` and finds tag candidates and empties with bitwise
/// tricks, while the byte-wise probe walks one bucket at a time. Both
/// visit candidate buckets in the same order, so every table decision
/// (which bucket an insert lands in, which entries a deletion shifts
/// back) — and hence the table layout and the probe counters — is
/// byte-identical across the gate.
#[derive(Debug)]
pub struct Fcht {
    /// Per-bucket control byte: [`CTRL_EMPTY`] or the hash fragment.
    ctrl: Vec<u8>,
    /// Per-bucket key (disk page number); meaningful only when the
    /// bucket's control byte is occupied.
    keys: Vec<u64>,
    /// Per-bucket packed flash location: `block << 32 | slot`.
    locs: Vec<u64>,
    /// `64 - log2(buckets)`: maps a 64-bit hash to a bucket.
    shift: u32,
    len: usize,
    /// Probe eight control bytes per load (SWAR) instead of one.
    swar: bool,
    /// Packed probe statistics (`Cell`: lookups are `&self`), updated
    /// with a single load/store per probe to keep the counters off the
    /// hot path's critical cost. Bits 16.. count 8-byte control groups
    /// touched by probes; bits ..16 hold the longest probe observed in
    /// buckets (saturating at `u16::MAX`). Identical across probe
    /// modes.
    probe_stats: Cell<u64>,
}

impl Default for Fcht {
    fn default() -> Self {
        Fcht::new()
    }
}

/// Multiplicative hash constant (2^64 / golden ratio, forced odd) —
/// the same one [`crate::fxhash::FxHasher`] uses.
const FCHT_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Fcht {
    /// Creates an empty table.
    pub fn new() -> Self {
        Fcht::with_capacity(0)
    }

    /// Creates an empty table pre-sized for `capacity` mappings. The
    /// table holds at most one entry per flash slot, so sizing it from
    /// the device geometry means the lookup hot path never rehashes.
    pub fn with_capacity(capacity: usize) -> Self {
        // Keep the load factor at or below 7/8 once `capacity` entries
        // are resident.
        let buckets = (capacity.saturating_mul(8) / 7 + 1)
            .next_power_of_two()
            .max(8);
        Fcht {
            ctrl: vec![CTRL_EMPTY; buckets],
            keys: vec![0; buckets],
            locs: vec![0; buckets],
            shift: 64 - buckets.trailing_zeros(),
            len: 0,
            swar: true,
            probe_stats: Cell::new(0),
        }
    }

    /// Selects SWAR group probing (`true`, the default) or the
    /// byte-wise differential-oracle probe. Purely an execution-mode
    /// switch: layout and results never depend on it.
    pub fn set_swar_probe(&mut self, swar: bool) {
        self.swar = swar;
    }

    /// `true` when probes run the SWAR group path.
    pub fn swar_probe(&self) -> bool {
        self.swar
    }

    /// Lifetime count of 8-byte control groups touched by probes.
    pub fn probe_groups(&self) -> u64 {
        self.probe_stats.get() >> 16
    }

    /// Longest probe observed so far, in buckets from the home bucket
    /// to the terminating bucket, inclusive (saturating at
    /// `u16::MAX` — far beyond any survivable probe length).
    pub fn max_probe_len(&self) -> u64 {
        self.probe_stats.get() & 0xFFFF
    }

    /// Number of cached disk pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no disk pages are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The multiplicative hash all probe addressing derives from.
    #[inline]
    fn hash(key: u64) -> u64 {
        key.wrapping_mul(FCHT_SEED)
    }

    /// 7-bit control fragment: middle product bits, disjoint from the
    /// home-bucket bits for any realistic table size (< 2^25 buckets).
    #[inline]
    fn frag(h: u64) -> u8 {
        ((h >> 32) as u8) & 0x7F
    }

    /// Home bucket: high bits of the multiplicative hash, which is
    /// where the multiply concentrates the mixing.
    #[inline]
    fn home(&self, key: u64) -> usize {
        (Self::hash(key) >> self.shift) as usize
    }

    /// Packs a flash location into one `locs` word.
    #[inline]
    fn pack(addr: PageAddr) -> u64 {
        (addr.block.0 as u64) << 32 | addr.slot as u64
    }

    /// Unpacks a `locs` word.
    #[inline]
    fn unpack(loc: u64) -> PageAddr {
        PageAddr::new(BlockId((loc >> 32) as u32), loc as u32)
    }

    /// Credits one finished probe that ended at bucket `i` after
    /// starting at `home`. Both counters derive O(1) from those two
    /// positions — the walk is contiguous (mod table size) in both
    /// probe flavours, so `aligned-group span` = groups touched and
    /// `bucket span` = probe length — keeping the probe loops
    /// instrumentation-free and the two flavours' counters identical
    /// by construction.
    #[inline]
    fn note_probe(&self, home: usize, i: usize) {
        let mask = self.ctrl.len() - 1;
        let groups = ((i / GROUP).wrapping_sub(home / GROUP) & (mask / GROUP)) as u64 + 1;
        let len = ((i.wrapping_sub(home) & mask) as u64 + 1).min(0xFFFF);
        // Branchless single read-modify-write of the packed word.
        let st = self.probe_stats.get();
        self.probe_stats
            .set(((st + (groups << 16)) & !0xFFFF) | len.max(st & 0xFFFF));
    }

    /// Loads aligned control group `g` as a little-endian word: byte
    /// lane `k` holds bucket `g * GROUP + k`, so `trailing_zeros / 8`
    /// walks candidate buckets in ascending probe order.
    #[inline]
    fn load_group(&self, g: usize) -> u64 {
        u64::from_le_bytes(self.ctrl[g * GROUP..(g + 1) * GROUP].try_into().unwrap())
    }

    /// Byte-at-a-time probe: the original loop, retained as the
    /// differential oracle for the SWAR path. Reads only control bytes
    /// until the fragment matches; keys stay untouched on the common
    /// advance steps.
    #[inline]
    fn probe_bytewise(&self, disk_page: u64) -> Probe {
        let mask = self.ctrl.len() - 1;
        let h = Self::hash(disk_page);
        let frag = Self::frag(h);
        let home = (h >> self.shift) as usize;
        let mut i = home;
        loop {
            let c = self.ctrl[i];
            if c == CTRL_EMPTY {
                self.note_probe(home, i);
                return Probe::Vacant(i);
            }
            if c == frag && self.keys[i] == disk_page {
                self.note_probe(home, i);
                return Probe::Found(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// SWAR group probe: loads eight control bytes per `u64`. Empties
    /// are exact (`word & MSB`, see [`MSB`]); tag candidates come from
    /// the classic zero-byte trick on `word ^ broadcast(frag)`, which
    /// never misses a true zero byte and only false-positives *above*
    /// the first true zero — harmless, because candidates are visited
    /// in ascending bucket order and verified against the control byte
    /// and key before use. Capacity is a power of two ≥ 8, so groups
    /// tile the table exactly and wrap-around lands on a group
    /// boundary.
    #[inline]
    fn probe_swar(&self, disk_page: u64) -> Probe {
        let gmask = self.ctrl.len() / GROUP - 1;
        let h = Self::hash(disk_page);
        let frag = Self::frag(h);
        let home = (h >> self.shift) as usize;
        let mut g = home / GROUP;
        // The first group may start mid-chain: ignore lanes before the
        // home bucket so the probe semantics match the byte-wise walk.
        let mut live = !0u64 << ((home % GROUP) * 8);
        loop {
            let word = self.load_group(g);
            let empties = word & MSB & live;
            let x = word ^ (LSB * frag as u64);
            let mut cands = x.wrapping_sub(LSB) & !x & MSB & live;
            if empties != 0 {
                // Buckets past the first empty terminate the chain.
                cands &= empties ^ empties.wrapping_sub(1);
            }
            while cands != 0 {
                let i = g * GROUP + cands.trailing_zeros() as usize / 8;
                if self.ctrl[i] == frag && self.keys[i] == disk_page {
                    self.note_probe(home, i);
                    return Probe::Found(i);
                }
                cands &= cands - 1;
            }
            if empties != 0 {
                let i = g * GROUP + empties.trailing_zeros() as usize / 8;
                self.note_probe(home, i);
                return Probe::Vacant(i);
            }
            g = (g + 1) & gmask;
            live = !0;
        }
    }

    /// Probes for `disk_page` through the configured mode. Terminates
    /// because the load factor never reaches 1 (inserts grow at 7/8).
    #[inline]
    fn probe(&self, disk_page: u64) -> Probe {
        if self.swar {
            self.probe_swar(disk_page)
        } else {
            self.probe_bytewise(disk_page)
        }
    }

    /// Issues a best-effort prefetch of the cache lines a probe of
    /// `disk_page` touches first: the home bucket's control group and
    /// its key/location words. A pure hint — no architectural effect —
    /// which is what lets `FlashCache::op_batch` overlap the probe
    /// misses of independent ops without perturbing results.
    #[inline]
    pub fn prefetch(&self, disk_page: u64) {
        let home = self.home(disk_page);
        prefetch_read(self.ctrl.as_ptr().wrapping_add(home & !(GROUP - 1)));
        prefetch_read(self.keys.as_ptr().wrapping_add(home).cast());
        prefetch_read(self.locs.as_ptr().wrapping_add(home).cast());
    }

    /// Looks up the flash location of a disk page.
    #[inline]
    pub fn lookup(&self, disk_page: u64) -> Option<PageAddr> {
        match self.probe(disk_page) {
            Probe::Found(i) => Some(Self::unpack(self.locs[i])),
            Probe::Vacant(_) => None,
        }
    }

    /// Installs or moves a mapping, returning any previous location.
    pub fn insert(&mut self, disk_page: u64, addr: PageAddr) -> Option<PageAddr> {
        if (self.len + 1) * 8 > self.ctrl.len() * 7 {
            self.grow();
        }
        match self.probe(disk_page) {
            Probe::Found(i) => {
                let old = Self::unpack(self.locs[i]);
                self.locs[i] = Self::pack(addr);
                Some(old)
            }
            Probe::Vacant(i) => {
                self.ctrl[i] = Self::frag(Self::hash(disk_page));
                self.keys[i] = disk_page;
                self.locs[i] = Self::pack(addr);
                self.len += 1;
                None
            }
        }
    }

    /// Removes a mapping.
    pub fn remove(&mut self, disk_page: u64) -> Option<PageAddr> {
        let mask = self.ctrl.len() - 1;
        let i = match self.probe(disk_page) {
            Probe::Found(i) => i,
            Probe::Vacant(_) => return None,
        };
        let removed = Self::unpack(self.locs[i]);
        // Backward-shift deletion: walk the probe chain after the hole
        // and pull back every entry whose home bucket lies at or before
        // the hole, so chains stay contiguous without tombstones. The
        // walk is bucket-wise and oblivious to SWAR group boundaries —
        // a chain (or the hole it compacts) may span groups freely, and
        // the resulting layout is what both probe flavours then see.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.ctrl[j] == CTRL_EMPTY {
                break;
            }
            let h = self.home(self.keys[j]);
            if (j.wrapping_sub(h) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.ctrl[hole] = self.ctrl[j];
                self.keys[hole] = self.keys[j];
                self.locs[hole] = self.locs[j];
                hole = j;
            }
        }
        self.ctrl[hole] = CTRL_EMPTY;
        self.len -= 1;
        Some(removed)
    }

    fn grow(&mut self) {
        let doubled = (self.ctrl.len() * 2).max(8);
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![CTRL_EMPTY; doubled]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; doubled]);
        let old_locs = std::mem::replace(&mut self.locs, vec![0; doubled]);
        self.shift = 64 - self.ctrl.len().trailing_zeros();
        let mask = self.ctrl.len() - 1;
        for (b, c) in old_ctrl.into_iter().enumerate() {
            if c == CTRL_EMPTY {
                continue;
            }
            let mut i = self.home(old_keys[b]);
            while self.ctrl[i] != CTRL_EMPTY {
                i = (i + 1) & mask;
            }
            self.ctrl[i] = c;
            self.keys[i] = old_keys[b];
            self.locs[i] = old_locs[b];
        }
    }
}

/// Best-effort read prefetch into the nearest cache level: a no-op on
/// architectures without a stable hint instruction.
#[inline(always)]
fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, even on invalid
    // addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast());
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a hint; it never faults.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Per-flash-page entry of the Flash page status table (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageState {
    /// Valid bit: the page holds live cached data.
    pub valid: bool,
    /// Dirty: content newer than the disk copy (write-cache pages).
    pub dirty: bool,
    /// Configured ECC strength for this flash page.
    pub ecc_strength: u8,
    /// Mode this flash page is (or will next be) programmed in.
    pub mode: CellMode,
    /// Saturating read-access counter (§5.2.2). This is the *raw*
    /// stored value; pending epoch decay may still apply — read through
    /// [`Fpst::access_count`] for the effective value.
    pub access_count: u8,
    /// Decay epoch `access_count` was last folded at (see
    /// [`Fpst::advance_decay_epoch`]).
    pub access_epoch: u32,
    /// Consecutive reads whose error count reached the configured
    /// strength — reconfiguration waits for errors that "fail
    /// consistently" (§5.2.1) so a transient soft error cannot trigger a
    /// permanent descriptor change.
    pub error_streak: u8,
}

impl PageState {
    fn fresh(ecc_strength: u8, mode: CellMode) -> Self {
        PageState {
            valid: false,
            dirty: false,
            ecc_strength,
            mode,
            access_count: 0,
            access_epoch: 0,
            error_streak: 0,
        }
    }

    /// Saturating increment of the access counter; returns the new value.
    pub fn bump_access(&mut self) -> u8 {
        self.access_count = self.access_count.saturating_add(1);
        self.access_count
    }
}

/// Sentinel in [`Fpst::disk_pages`] for "no disk page stored here".
const NO_DISK_PAGE: u64 = u64::MAX;

/// Flash page status table: dense per-slot state.
///
/// The reverse mapping (flash slot → disk page) lives in a separate
/// side-array rather than inside [`PageState`]: the hot paths (hit
/// servicing, access-count decay, descriptor checks) only touch the
/// small status fields, while the reverse map is consulted on GC and
/// invalidation. Splitting it keeps the per-slot status stride small so
/// table walks stream fewer cache lines.
#[derive(Debug)]
pub struct Fpst {
    geometry: FlashGeometry,
    pages: Vec<PageState>,
    /// Per-slot reverse mapping; [`NO_DISK_PAGE`] when empty.
    disk_pages: Vec<u64>,
    /// Current decay epoch: each page owes `decay_epoch - access_epoch`
    /// halvings of its access counter, applied lazily on the next
    /// touch. Advancing the epoch is O(1), replacing the old
    /// full-table decay walk on the access path.
    decay_epoch: u32,
}

impl Fpst {
    /// Builds the table for a device geometry with uniform initial
    /// configuration.
    pub fn new(geometry: FlashGeometry, initial_ecc: u8, initial_mode: CellMode) -> Self {
        let slots = geometry.total_slots() as usize;
        Fpst {
            geometry,
            pages: vec![PageState::fresh(initial_ecc, initial_mode); slots],
            disk_pages: vec![NO_DISK_PAGE; slots],
            decay_epoch: 0,
        }
    }

    fn idx(&self, addr: PageAddr) -> usize {
        addr.block.0 as usize * self.geometry.slots_per_block() as usize + addr.slot as usize
    }

    /// Immutable page state.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the geometry.
    pub fn get(&self, addr: PageAddr) -> &PageState {
        &self.pages[self.idx(addr)]
    }

    /// Mutable page state.
    pub fn get_mut(&mut self, addr: PageAddr) -> &mut PageState {
        let i = self.idx(addr);
        &mut self.pages[i]
    }

    /// Disk page stored at `addr` (reverse mapping), if any.
    pub fn disk_page(&self, addr: PageAddr) -> Option<u64> {
        let dp = self.disk_pages[self.idx(addr)];
        if dp == NO_DISK_PAGE {
            None
        } else {
            Some(dp)
        }
    }

    /// Records `disk_page` as the content of slot `addr`.
    pub fn set_disk_page(&mut self, addr: PageAddr, disk_page: u64) {
        debug_assert_ne!(disk_page, NO_DISK_PAGE, "disk page id is reserved");
        let i = self.idx(addr);
        self.disk_pages[i] = disk_page;
    }

    /// Clears the reverse mapping of slot `addr`.
    pub fn clear_disk_page(&mut self, addr: PageAddr) {
        let i = self.idx(addr);
        self.disk_pages[i] = NO_DISK_PAGE;
    }

    /// Clears and returns the reverse mapping of slot `addr`.
    pub fn take_disk_page(&mut self, addr: PageAddr) -> Option<u64> {
        let i = self.idx(addr);
        let dp = std::mem::replace(&mut self.disk_pages[i], NO_DISK_PAGE);
        if dp == NO_DISK_PAGE {
            None
        } else {
            Some(dp)
        }
    }

    /// Iterates (slot, state) pairs of one block.
    pub fn iter_block(&self, block: BlockId) -> impl Iterator<Item = (PageAddr, &PageState)> {
        let spb = self.geometry.slots_per_block();
        (0..spb).map(move |slot| {
            let addr = PageAddr::new(block, slot);
            (addr, &self.pages[self.idx(addr)])
        })
    }

    /// Starts a new decay epoch: every access counter is halved once,
    /// *lazily*. O(1) — pages fold the pending halvings the next time
    /// their counter is read or written, so steady-state accesses never
    /// pay a full-table walk. A `u8` counter is dead after 8 halvings,
    /// so the fold caps the shift and epoch wrap-around is harmless.
    pub fn advance_decay_epoch(&mut self) {
        self.decay_epoch = self.decay_epoch.wrapping_add(1);
    }

    /// The current decay epoch (stamp for direct `access_count` writes).
    pub fn decay_epoch(&self) -> u32 {
        self.decay_epoch
    }

    /// Effective access counter of `addr`, with pending decay applied.
    pub fn access_count(&self, addr: PageAddr) -> u8 {
        let p = self.get(addr);
        let owed = self.decay_epoch.wrapping_sub(p.access_epoch);
        if owed >= 8 {
            0
        } else {
            p.access_count >> owed
        }
    }

    /// Folds pending decay into the stored counter and stamps the page
    /// current. Returns the folded value.
    fn fold_decay(&mut self, addr: PageAddr) -> u8 {
        let epoch = self.decay_epoch;
        let folded = self.access_count(addr);
        let p = self.get_mut(addr);
        p.access_count = folded;
        p.access_epoch = epoch;
        folded
    }

    /// Saturating increment of `addr`'s access counter (folding pending
    /// decay first); returns the new effective value.
    pub fn bump_access(&mut self, addr: PageAddr) -> u8 {
        self.fold_decay(addr);
        self.get_mut(addr).bump_access()
    }

    /// Overwrites `addr`'s access counter with `value`, stamped at the
    /// current epoch (no decay owed until the next epoch).
    pub fn set_access_count(&mut self, addr: PageAddr, value: u8) {
        let epoch = self.decay_epoch;
        let p = self.get_mut(addr);
        p.access_count = value;
        p.access_epoch = epoch;
    }

    /// Sum of configured ECC strengths across a block (`TotalECC` in the
    /// degree-of-wear-out cost, §3.3).
    pub fn total_ecc(&self, block: BlockId) -> u32 {
        self.iter_block(block)
            .map(|(_, p)| p.ecc_strength as u32)
            .sum()
    }

    /// Number of pages of a block configured in SLC mode
    /// (`TotalSLC_MLC` in the wear cost). Counted per physical page
    /// (even slots), since a mode describes the physical page.
    pub fn total_slc(&self, block: BlockId) -> u32 {
        self.iter_block(block)
            .filter(|(a, p)| !a.is_upper_half() && p.mode == CellMode::Slc)
            .count() as u32
    }
}

/// Per-block entry of the Flash block status table (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockState {
    /// Erases performed on this block.
    pub erase_count: u64,
    /// Valid (live) pages currently in the block.
    pub valid_pages: u32,
    /// Programmed-but-invalidated pages awaiting GC.
    pub invalid_pages: u32,
    /// Logical timestamp of the last access, for block LRU.
    pub last_access: u64,
    /// Region the block currently serves.
    pub region: RegionKind,
    /// Permanently removed from service (§5.2: a page hit both the ECC
    /// and density limits and still fails).
    pub retired: bool,
    /// Running sum of configured ECC strengths over the block's slots
    /// (`TotalECC`), maintained incrementally so the wear cost is O(1).
    pub total_ecc: u32,
    /// Running count of physical pages configured in SLC mode
    /// (`TotalSLC_MLC`).
    pub slc_pages: u32,
}

impl BlockState {
    fn fresh(region: RegionKind, total_ecc: u32) -> Self {
        BlockState {
            erase_count: 0,
            valid_pages: 0,
            invalid_pages: 0,
            last_access: 0,
            region,
            retired: false,
            total_ecc,
            slc_pages: 0,
        }
    }
}

/// Flash block status table.
#[derive(Debug)]
pub struct Fbst {
    blocks: Vec<BlockState>,
}

impl Fbst {
    /// Builds the table with every block assigned by `region_of`, the
    /// running `TotalECC` seeded to `slots_per_block × initial_ecc`, and
    /// `slc_pages` seeded to `initial_slc_pages` (the block's physical
    /// page count when the cache defaults to SLC mode).
    pub fn new(
        blocks: u32,
        slots_per_block: u32,
        initial_ecc: u8,
        initial_slc_pages: u32,
        mut region_of: impl FnMut(BlockId) -> RegionKind,
    ) -> Self {
        let total = slots_per_block * initial_ecc as u32;
        Fbst {
            blocks: (0..blocks)
                .map(|b| {
                    let mut state = BlockState::fresh(region_of(BlockId(b)), total);
                    state.slc_pages = initial_slc_pages;
                    state
                })
                .collect(),
        }
    }

    /// Immutable block state.
    pub fn get(&self, block: BlockId) -> &BlockState {
        &self.blocks[block.0 as usize]
    }

    /// Mutable block state.
    pub fn get_mut(&mut self, block: BlockId) -> &mut BlockState {
        &mut self.blocks[block.0 as usize]
    }

    /// Iterates all blocks with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BlockState)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The degree-of-wear-out cost of §3.3:
    /// `N_erase + k1·TotalECC + k2·TotalSLC`, from the incrementally
    /// maintained sums (see [`Fpst::total_ecc`]/[`Fpst::total_slc`] for
    /// the ground-truth recomputation used in tests).
    pub fn wear_out(&self, block: BlockId, k1: f64, k2: f64) -> f64 {
        let s = self.get(block);
        s.erase_count as f64 + k1 * s.total_ecc as f64 + k2 * s.slc_pages as f64
    }
}

/// Flash global status table (§3.4): run-time averages steering the
/// controller heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgst {
    /// Exponentially weighted flash miss rate.
    pub miss_rate: f64,
    /// Exponentially weighted average flash hit latency, µs.
    pub avg_hit_latency_us: f64,
    /// Total accesses observed.
    pub accesses: u64,
    /// Total misses observed.
    pub misses: u64,
    /// EWMA smoothing factor.
    pub alpha: f64,
}

impl Default for Fgst {
    fn default() -> Self {
        Fgst {
            miss_rate: 0.0,
            avg_hit_latency_us: 50.0,
            accesses: 0,
            misses: 0,
            alpha: 0.001,
        }
    }
}

impl Fgst {
    /// Records an access outcome.
    pub fn record(&mut self, hit: bool, hit_latency_us: f64) {
        self.accesses += 1;
        let miss = if hit { 0.0 } else { 1.0 };
        if !hit {
            self.misses += 1;
        }
        self.miss_rate += self.alpha * (miss - self.miss_rate);
        if hit {
            self.avg_hit_latency_us += self.alpha * (hit_latency_us - self.avg_hit_latency_us);
        }
    }

    /// Lifetime (not EWMA) miss rate.
    pub fn cumulative_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Merges per-shard FGSTs into one table describing the union of the
    /// traffic: lifetime counters sum; the EWMA rates are combined as
    /// access-weighted (miss rate) and hit-weighted (hit latency)
    /// averages, the closest single-table equivalent of shards that each
    /// smoothed only their own slice of the stream.
    ///
    /// A single part is returned unchanged (not run through the weighted
    /// average), so a one-shard engine reports bit-identical FGST state
    /// to a bare cache.
    pub fn merged(parts: &[Fgst]) -> Fgst {
        if parts.len() == 1 {
            return parts[0];
        }
        let mut out = Fgst::default();
        if parts.is_empty() {
            return out;
        }
        out.alpha = parts[0].alpha;
        let mut rate_num = 0.0;
        let mut lat_num = 0.0;
        let mut hits = 0u64;
        for p in parts {
            out.accesses += p.accesses;
            out.misses += p.misses;
            rate_num += p.miss_rate * p.accesses as f64;
            let h = p.accesses - p.misses;
            lat_num += p.avg_hit_latency_us * h as f64;
            hits += h;
        }
        if out.accesses > 0 {
            out.miss_rate = rate_num / out.accesses as f64;
        }
        if hits > 0 {
            out.avg_hit_latency_us = lat_num / hits as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> FlashGeometry {
        FlashGeometry {
            blocks: 4,
            pages_per_block: 4,
            ..FlashGeometry::default()
        }
    }

    /// Keys whose home bucket (in a table of `buckets`) is `want`,
    /// found by brute force — lets tests place probe chains exactly.
    fn keys_with_home(buckets: usize, want: usize, n: usize) -> Vec<u64> {
        let shift = 64 - buckets.trailing_zeros();
        (0..)
            .filter(|&k| (Fcht::hash(k) >> shift) as usize == want)
            .take(n)
            .collect()
    }

    /// A table pre-sized to `buckets` buckets (no growth below 7/8 load).
    fn sized(buckets: usize) -> Fcht {
        let t = Fcht::with_capacity(buckets * 7 / 8 - 1);
        assert_eq!(t.ctrl.len(), buckets);
        t
    }

    #[test]
    fn fcht_roundtrip() {
        let mut t = Fcht::new();
        assert!(t.is_empty());
        let a = PageAddr::new(BlockId(1), 3);
        assert_eq!(t.insert(42, a), None);
        assert_eq!(t.lookup(42), Some(a));
        assert_eq!(t.len(), 1);
        let b = PageAddr::new(BlockId(2), 0);
        assert_eq!(t.insert(42, b), Some(a));
        assert_eq!(t.remove(42), Some(b));
        assert_eq!(t.lookup(42), None);
    }

    #[test]
    fn swar_and_bytewise_probes_stay_in_lock_step() {
        // Deterministic churn at high load: every mutation and every
        // lookup must agree between the two probe flavours, including
        // the layout left behind (compared via the counters, which
        // count groups identically) and the lookup answers.
        let mut swar = Fcht::with_capacity(64);
        let mut byte = Fcht::with_capacity(64);
        byte.set_swar_probe(false);
        assert!(swar.swar_probe() && !byte.swar_probe());
        let mut state = 0x1234_5678u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for round in 0..2_000 {
            let k = step() % 96; // dense key space => real collisions
            let addr = PageAddr::new(BlockId((round % 7) as u32), (round % 5) as u32);
            match round % 3 {
                0 => assert_eq!(swar.insert(k, addr), byte.insert(k, addr), "round {round}"),
                1 => assert_eq!(swar.remove(k), byte.remove(k), "round {round}"),
                _ => assert_eq!(swar.lookup(k), byte.lookup(k), "round {round}"),
            }
            assert_eq!(swar.len(), byte.len());
        }
        for k in 0..96 {
            assert_eq!(swar.lookup(k), byte.lookup(k), "final state, key {k}");
        }
        assert_eq!(swar.probe_groups(), byte.probe_groups());
        assert_eq!(swar.max_probe_len(), byte.max_probe_len());
        assert!(swar.probe_groups() > 0);
        assert!(swar.max_probe_len() >= 1);
    }

    #[test]
    fn backward_shift_across_group_boundary() {
        // A chain that starts in group 0 (bucket 6) and spills across
        // the boundary into group 1: deleting the head must pull the
        // spilled entries back across the boundary, in both modes.
        for swar_mode in [true, false] {
            let mut t = sized(16);
            t.set_swar_probe(swar_mode);
            let keys = keys_with_home(16, 6, 4);
            for (s, &k) in keys.iter().enumerate() {
                t.insert(k, PageAddr::new(BlockId(9), s as u32));
            }
            // Chain occupies buckets 6, 7 (group 0), 8, 9 (group 1).
            assert_eq!(
                t.ctrl[6..10].iter().filter(|&&c| c != CTRL_EMPTY).count(),
                4
            );
            assert_eq!(t.remove(keys[0]), Some(PageAddr::new(BlockId(9), 0)));
            // Survivors shifted back; bucket 9 is the new hole.
            assert_eq!(t.ctrl[9], CTRL_EMPTY, "swar={swar_mode}");
            for (s, &k) in keys.iter().enumerate().skip(1) {
                assert_eq!(
                    t.lookup(k),
                    Some(PageAddr::new(BlockId(9), s as u32)),
                    "swar={swar_mode}"
                );
            }
        }
    }

    #[test]
    fn swar_probe_wraps_around_the_table_end() {
        // Home in the last group, chain wrapping to bucket 0: the group
        // cursor must wrap too (capacity is a multiple of the group
        // size, so the wrap lands exactly on a group boundary).
        for swar_mode in [true, false] {
            let mut t = sized(16);
            t.set_swar_probe(swar_mode);
            let keys = keys_with_home(16, 14, 4);
            for (s, &k) in keys.iter().enumerate() {
                t.insert(k, PageAddr::new(BlockId(1), s as u32));
            }
            assert!(t.ctrl[0] != CTRL_EMPTY && t.ctrl[1] != CTRL_EMPTY);
            for (s, &k) in keys.iter().enumerate() {
                assert_eq!(
                    t.lookup(k),
                    Some(PageAddr::new(BlockId(1), s as u32)),
                    "swar={swar_mode}"
                );
            }
            // Absent key with the same home walks the whole wrapped
            // chain and still terminates at the first empty.
            let absent = keys_with_home(16, 14, 5)[4];
            assert_eq!(t.lookup(absent), None, "swar={swar_mode}");
            assert_eq!(t.remove(keys[1]), Some(PageAddr::new(BlockId(1), 1)));
            assert_eq!(t.lookup(keys[3]), Some(PageAddr::new(BlockId(1), 3)));
        }
    }

    #[test]
    fn stale_keys_beyond_an_empty_are_never_resurrected() {
        // Backward-shift leaves old key bytes behind CTRL_EMPTY
        // markers; a SWAR candidate false-positive on such a lane must
        // be rejected by the control-byte check.
        let mut t = sized(16);
        let keys = keys_with_home(16, 3, 2);
        t.insert(keys[0], PageAddr::new(BlockId(0), 0));
        t.insert(keys[1], PageAddr::new(BlockId(0), 1));
        t.remove(keys[1]);
        // keys[1]'s bytes may still sit in the keys array at bucket 4.
        assert_eq!(t.lookup(keys[1]), None);
        assert_eq!(t.lookup(keys[0]), Some(PageAddr::new(BlockId(0), 0)));
    }

    #[test]
    fn probe_counters_accumulate_and_prefetch_is_inert() {
        let mut t = Fcht::with_capacity(32);
        assert_eq!((t.probe_groups(), t.max_probe_len()), (0, 0));
        t.insert(7, PageAddr::new(BlockId(0), 0));
        let after_insert = t.probe_groups();
        assert!(after_insert >= 1);
        t.prefetch(7); // hint only: no counter movement, no state change
        assert_eq!(t.probe_groups(), after_insert);
        assert_eq!(t.lookup(7), Some(PageAddr::new(BlockId(0), 0)));
        assert!(t.probe_groups() > after_insert);
        assert!(t.max_probe_len() >= 1);
    }

    #[test]
    fn fpst_block_sums() {
        let mut t = Fpst::new(geom(), 1, CellMode::Mlc);
        let b = BlockId(2);
        // 8 slots per block here (4 physical pages x 2).
        assert_eq!(t.total_ecc(b), 8);
        assert_eq!(t.total_slc(b), 0);
        t.get_mut(PageAddr::new(b, 0)).ecc_strength = 5;
        t.get_mut(PageAddr::new(b, 0)).mode = CellMode::Slc;
        t.get_mut(PageAddr::new(b, 2)).mode = CellMode::Slc;
        t.get_mut(PageAddr::new(b, 3)).mode = CellMode::Slc; // upper half: not counted
        assert_eq!(t.total_ecc(b), 12);
        assert_eq!(t.total_slc(b), 2);
        // Other blocks unaffected.
        assert_eq!(t.total_ecc(BlockId(0)), 8);
    }

    #[test]
    fn access_counter_saturates() {
        let mut t = Fpst::new(geom(), 1, CellMode::Mlc);
        let p = t.get_mut(PageAddr::new(BlockId(0), 0));
        p.access_count = 254;
        assert_eq!(p.bump_access(), 255);
        assert_eq!(p.bump_access(), 255);
    }

    #[test]
    fn lazy_decay_matches_eager_halving() {
        let mut t = Fpst::new(geom(), 1, CellMode::Mlc);
        let a = PageAddr::new(BlockId(0), 0);
        t.set_access_count(a, 200);
        // One epoch: 200 -> 100; bump folds then increments.
        t.advance_decay_epoch();
        assert_eq!(t.access_count(a), 100);
        assert_eq!(t.bump_access(a), 101);
        // Three more epochs: 101 >> 3 = 12.
        for _ in 0..3 {
            t.advance_decay_epoch();
        }
        assert_eq!(t.access_count(a), 12);
        // A counter is dead after 8 epochs regardless of magnitude.
        t.set_access_count(a, 255);
        for _ in 0..8 {
            t.advance_decay_epoch();
        }
        assert_eq!(t.access_count(a), 0);
        assert_eq!(t.bump_access(a), 1);
    }

    #[test]
    fn set_access_count_stamps_current_epoch() {
        let mut t = Fpst::new(geom(), 1, CellMode::Mlc);
        let a = PageAddr::new(BlockId(1), 2);
        t.advance_decay_epoch();
        t.advance_decay_epoch();
        t.set_access_count(a, 40);
        // No decay owed until the *next* epoch.
        assert_eq!(t.access_count(a), 40);
        t.advance_decay_epoch();
        assert_eq!(t.access_count(a), 20);
    }

    #[test]
    fn fbst_wear_cost_weights_modes_heavily() {
        let mut fbst = Fbst::new(4, 8, 1, 0, |_| RegionKind::Read);
        fbst.get_mut(BlockId(0)).erase_count = 10;
        let base = fbst.wear_out(BlockId(0), 0.5, 8.0);
        assert!((base - (10.0 + 0.5 * 8.0)).abs() < 1e-12);
        fbst.get_mut(BlockId(0)).slc_pages = 1;
        let with_slc = fbst.wear_out(BlockId(0), 0.5, 8.0);
        assert!((with_slc - base - 8.0).abs() < 1e-12);
    }

    #[test]
    fn fbst_incremental_sums_match_fpst_recomputation() {
        // The FBST keeps running TotalECC/TotalSLC; the FPST can always
        // recompute them. They must agree after reconfiguration.
        let mut fpst = Fpst::new(geom(), 1, CellMode::Mlc);
        let mut fbst = Fbst::new(4, 8, 1, 0, |_| RegionKind::Read);
        let b = BlockId(1);
        fpst.get_mut(PageAddr::new(b, 0)).ecc_strength = 4;
        fbst.get_mut(b).total_ecc += 3;
        fpst.get_mut(PageAddr::new(b, 2)).mode = CellMode::Slc;
        fpst.get_mut(PageAddr::new(b, 3)).mode = CellMode::Slc;
        fbst.get_mut(b).slc_pages += 1;
        assert_eq!(fbst.get(b).total_ecc, fpst.total_ecc(b));
        assert_eq!(fbst.get(b).slc_pages, fpst.total_slc(b));
    }

    #[test]
    fn fbst_regions_assigned() {
        let fbst = Fbst::new(10, 8, 1, 0, |b| {
            if b.0 < 9 {
                RegionKind::Read
            } else {
                RegionKind::Write
            }
        });
        let reads = fbst
            .iter()
            .filter(|(_, s)| s.region == RegionKind::Read)
            .count();
        assert_eq!(reads, 9);
    }

    #[test]
    fn fgst_tracks_rates() {
        let mut g = Fgst::default();
        for _ in 0..900 {
            g.record(true, 50.0);
        }
        for _ in 0..100 {
            g.record(false, 0.0);
        }
        assert!((g.cumulative_miss_rate() - 0.1).abs() < 1e-12);
        assert!(g.miss_rate > 0.0 && g.miss_rate < 0.5);
        assert!(g.avg_hit_latency_us > 0.0);
    }

    #[test]
    fn fgst_merged_single_part_is_identity() {
        let mut g = Fgst::default();
        for i in 0..57 {
            g.record(i % 3 != 0, 42.5);
        }
        // Bit-identical, not just approximately equal: the one-shard
        // engine must match a bare cache exactly.
        assert_eq!(Fgst::merged(&[g]), g);
    }

    #[test]
    fn fgst_merged_weights_by_traffic() {
        let mut a = Fgst::default();
        let mut b = Fgst::default();
        for _ in 0..300 {
            a.record(true, 40.0);
        }
        for _ in 0..100 {
            b.record(false, 0.0);
        }
        let m = Fgst::merged(&[a, b]);
        assert_eq!(m.accesses, 400);
        assert_eq!(m.misses, 100);
        assert!((m.cumulative_miss_rate() - 0.25).abs() < 1e-12);
        // Weighted EWMA miss rate sits between the parts'.
        assert!(m.miss_rate > a.miss_rate && m.miss_rate < b.miss_rate);
        // Empty merge yields the default table.
        assert_eq!(Fgst::merged(&[]), Fgst::default());
    }
}
