//! Edge-case and failure-injection tests for the flash cache: extreme
//! geometries, soft-error storms, region exhaustion, mode interactions,
//! and recovery behaviour.

#![allow(deprecated)] // legacy entry-point shims are intentionally exercised

use nand_flash::{CellMode, FlashConfig, FlashGeometry, WearConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::FlashCache;
use crate::config::{ControllerPolicy, FlashCacheConfig, SplitPolicy};

fn geometry(blocks: u32, pages_per_block: u32) -> FlashGeometry {
    FlashGeometry {
        blocks,
        pages_per_block,
        ..FlashGeometry::default()
    }
}

#[test]
fn minimum_viable_geometry_works() {
    // The smallest configuration validation allows: 4 blocks.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(4, 2),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    for p in 0..50u64 {
        c.read(p);
        c.write(p + 100);
    }
    c.check_invariants().unwrap();
    assert!(c.read(49).hit || c.read(49).needs_disk_read);
}

#[test]
fn soft_error_storm_is_survivable() {
    // Failure injection: a huge transient error rate. Most reads carry
    // a bit error, but BCH t=1 corrects singles and the consistent-
    // failure gate stops the controller thrashing; a rare double is an
    // uncorrectable read served from disk.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 8),
            wear: WearConfig {
                transient_errors_per_read: 0.5,
                ..WearConfig::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut disk_refetches = 0u64;
    for i in 0..20_000u64 {
        let out = c.read(i % 64);
        if out.uncorrectable {
            disk_refetches += 1;
        }
    }
    let s = c.stats();
    assert!(
        s.uncorrectable_reads > 0,
        "a 0.5/read soft-error rate must occasionally exceed t=1"
    );
    assert_eq!(s.uncorrectable_reads, disk_refetches);
    // The storm must not have killed the device: soft errors are not wear.
    assert!(!c.is_dead());
    assert_eq!(s.retired_blocks, 0);
    c.check_invariants().unwrap();
    // And the data is re-fetchable: reads still succeed afterwards.
    assert!(c.read(1).hit || c.read(1).needs_disk_read);
}

#[test]
fn uncorrectable_dirty_page_is_counted_as_lost_not_flushed() {
    // A dirty page whose flash copy rots cannot be flushed — the cache
    // must not pretend it wrote good data to disk.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 8),
            wear: WearConfig {
                transient_errors_per_read: 3.0, // almost every read fails t=1
                ..WearConfig::default()
            },
            ..FlashConfig::default()
        },
        controller: ControllerPolicy::FixedEcc { strength: 1 },
        initial_ecc: 1,
        max_ecc: 1,
        ..FlashCacheConfig::default()
    })
    .unwrap();
    c.write(5);
    let before_flush = c.stats().flushed_dirty_pages;
    let out = c.read(5);
    if out.uncorrectable {
        // The lost dirty copy must not appear in the flushed count.
        assert_eq!(c.stats().flushed_dirty_pages, before_flush);
    }
    c.check_invariants().unwrap();
}

#[test]
fn write_only_workload_never_touches_read_region_blocks() {
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(20, 8),
            ..FlashConfig::default()
        },
        split: SplitPolicy::Split {
            write_fraction: 0.2,
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    for i in 0..5_000u64 {
        c.write(i % 64);
    }
    // Read-region blocks must have zero erases: all churn is contained.
    let mut read_region_erases = 0u64;
    for b in c.device().geometry().iter_blocks() {
        if c.block_region(b) == crate::tables::RegionKind::Read {
            read_region_erases += c.device().erase_count(b);
        }
    }
    assert_eq!(
        read_region_erases, 0,
        "pure write traffic must not erase read-region blocks"
    );
    c.check_invariants().unwrap();
}

#[test]
fn read_only_workload_never_flushes() {
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 4),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut flushed = 0u64;
    for i in 0..10_000u64 {
        flushed += c.read(i % 2_000).flushed_dirty as u64;
    }
    assert_eq!(flushed, 0, "clean pages never owe disk writes");
    assert_eq!(c.stats().flushed_dirty_pages, 0);
    assert!(c.stats().evictions > 0, "capacity pressure must evict");
}

#[test]
fn slc_default_with_density_only_policy_is_stable() {
    // DensityOnly on an already-SLC device has nothing to switch; the
    // cache must still function and never report density events.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 8),
            ..FlashConfig::default()
        },
        default_mode: CellMode::Slc,
        controller: ControllerPolicy::DensityOnly,
        ..FlashCacheConfig::default()
    })
    .unwrap();
    for i in 0..3_000u64 {
        if i % 3 == 0 {
            c.write(i % 100);
        } else {
            c.read(i % 100);
        }
    }
    assert_eq!(c.slc_fraction(), 1.0);
    assert_eq!(c.stats().hot_promotions, 0, "nothing to promote");
    c.check_invariants().unwrap();
}

#[test]
fn interleaved_read_write_same_page_yields_single_mapping() {
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 8),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..5_000 {
        if rng.gen_bool(0.5) {
            c.read(7);
        } else {
            c.write(7);
        }
        assert!(c.cached_pages() <= 1);
    }
    assert_eq!(c.cached_pages(), 1);
    c.check_invariants().unwrap();
}

#[test]
fn wear_migration_across_regions_keeps_data_reachable() {
    // Force wear imbalance so migration moves a read-region block's
    // content; every cached page must remain readable afterwards.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(12, 4),
            ..FlashConfig::default()
        },
        wear_threshold: 10.0,
        ..FlashCacheConfig::default()
    })
    .unwrap();
    // Cold read content.
    for p in 0..40u64 {
        c.read(p);
    }
    // Hammer writes to age the write region far beyond the read blocks.
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..40_000 {
        c.write(40 + rng.gen_range(0..10u64));
    }
    assert!(c.stats().wear_migrations > 0, "imbalance must trigger §3.6");
    c.check_invariants().unwrap();
    // All write-set pages still readable (hit or honest miss, no panic).
    for p in 40..50u64 {
        let out = c.read(p);
        assert!(out.hit || out.needs_disk_read);
    }
}

#[test]
fn counter_decay_prevents_everything_going_hot() {
    // With decay, a uniformly-read working set larger than the decay
    // window must not mass-promote to SLC.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(16, 8),
            ..FlashConfig::default()
        },
        hot_threshold: 4,
        ..FlashCacheConfig::default()
    })
    .unwrap();
    for i in 0..100_000u64 {
        c.read(i % 1_500); // uniform scan over more pages than slots/4
    }
    assert!(
        c.slc_fraction() < 0.5,
        "uniform traffic must not promote wholesale, got {:.2}",
        c.slc_fraction()
    );
    c.check_invariants().unwrap();
}

#[test]
fn zipf_traffic_promotes_only_the_hot_head() {
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(16, 8),
            ..FlashConfig::default()
        },
        hot_threshold: 4,
        ..FlashCacheConfig::default()
    })
    .unwrap();
    // 90% of reads to 8 hot pages, the rest across 1000.
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..60_000 {
        let p = if rng.gen_bool(0.9) {
            rng.gen_range(0..8u64)
        } else {
            rng.gen_range(8..1_000u64)
        };
        c.read(p);
    }
    let s = c.stats();
    assert!(s.hot_promotions >= 8, "the head must be promoted");
    let frac = c.slc_fraction();
    assert!(
        frac > 0.0 && frac < 0.4,
        "promotion must be selective, got {frac:.2}"
    );
    // Hot page reads now run at SLC latency (25µs + decode < MLC 50µs + decode).
    let hot = c.read(0).latency_us;
    assert!(
        hot < 50.0 + c.config().ecc_latency.decode_us(1),
        "hot={hot}"
    );
}

#[test]
fn flush_interacts_correctly_with_eviction_accounting() {
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 4),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut flushed_during_writes = 0u64;
    for p in 0..30u64 {
        flushed_during_writes += c.write(p).flushed_dirty as u64;
    }
    let explicit = c.flush_writes();
    // Every dirty page was flushed exactly once: either pushed out by
    // write-region pressure or drained by the explicit flush.
    assert_eq!(explicit + flushed_during_writes, 30);
    // After the flush, evictions of those pages owe no further writes.
    let flushed_before = c.stats().flushed_dirty_pages;
    for p in 1_000..4_000u64 {
        c.read(p); // pressure out the old write pages
    }
    let flushed_by_eviction = c.stats().flushed_dirty_pages - flushed_before;
    assert_eq!(
        flushed_by_eviction, 0,
        "clean (already-flushed) pages must evict without disk writes"
    );
    c.check_invariants().unwrap();
}

#[test]
fn stats_latency_accounting_is_internally_consistent() {
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 8),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut foreground = 0.0;
    let mut background = 0.0;
    for i in 0..2_000u64 {
        let out = if i % 4 == 0 {
            c.write(i % 300)
        } else {
            c.read(i % 300)
        };
        foreground += out.latency_us;
        background += out.background_us;
    }
    let s = c.stats();
    assert!((s.foreground_us - foreground).abs() < 1e-6);
    assert!((s.background_us - background).abs() < 1e-6);
    // Device busy time accounts for everything the cache did, including GC.
    let device_busy = c.device().stats().busy_us;
    assert!(device_busy > 0.0);
    assert!(
        s.ecc_us <= s.foreground_us,
        "ECC time is part of foreground"
    );
}

#[test]
fn write_heavy_device_reaches_total_failure_without_orphans() {
    // Regression: wear-level migration used to orphan a block (outside
    // every allocator list) when end-of-life uncorrectable reads dropped
    // all migrated pages, leaving the device undying forever. A
    // write-dominated workload with shared hot sets reproduces it.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: geometry(8, 4),
            wear: WearConfig::default().accelerated(1e6),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let mut steps = 0u64;
    while !c.is_dead() && steps < 4_000_000 {
        let p = rng.gen_range(0..400u64);
        if rng.gen_bool(0.77) {
            c.write(p);
        } else {
            c.read(p);
        }
        steps += 1;
    }
    assert!(
        c.is_dead(),
        "device must reach total failure within {steps} steps"
    );
    c.check_invariants().unwrap();
}
