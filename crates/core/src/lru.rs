//! O(1) least-recently-used trackers.
//!
//! [`LruTracker`] handles sparse `u64` keys (the primary DRAM disk
//! cache's page LRU) with a doubly-linked list over vector slots plus a
//! key→slot map. [`DenseLru`] handles a dense `u32` key universe known
//! up front (one key per flash block) by indexing the links directly
//! with the key, removing the hash lookup from the replay hot path.

use crate::fxhash::FxHashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// LRU order tracker. Not a cache by itself: it only maintains recency
/// order; callers own the associated values.
#[derive(Debug, Default)]
pub struct LruTracker {
    nodes: Vec<Node>,
    free: Vec<usize>,
    map: FxHashMap<u64, usize>,
    head: usize, // most recent
    tail: usize, // least recent
}

impl LruTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        LruTracker {
            nodes: Vec::new(),
            free: Vec::new(),
            map: FxHashMap::default(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates an empty tracker pre-sized for `capacity` keys, so a
    /// known population (e.g. one key per flash block) never rehashes.
    pub fn with_capacity(capacity: usize) -> Self {
        LruTracker {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if `key` is tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Marks `key` as most recently used, inserting it if absent.
    /// Returns `true` if the key was already present.
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            let idx = if let Some(free) = self.free.pop() {
                self.nodes[free] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                free
            } else {
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            };
            self.map.insert(key, idx);
            self.push_front(idx);
            false
        }
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(idx) = self.map.remove(&key) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// The least recently used key, if any.
    pub fn lru(&self) -> Option<u64> {
        if self.tail == NIL {
            None
        } else {
            Some(self.nodes[self.tail].key)
        }
    }

    /// Removes and returns the least recently used key.
    pub fn pop_lru(&mut self) -> Option<u64> {
        let key = self.lru()?;
        self.remove(key);
        Some(key)
    }

    /// Iterates keys from least to most recently used.
    pub fn iter_lru_first(&self) -> impl Iterator<Item = u64> + '_ {
        LruIter {
            tracker: self,
            cur: self.tail,
        }
    }
}

struct LruIter<'a> {
    tracker: &'a LruTracker,
    cur: usize,
}

impl Iterator for LruIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cur == NIL {
            return None;
        }
        let node = self.tracker.nodes[self.cur];
        self.cur = node.prev;
        Some(node.key)
    }
}

const DNIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct DenseNode {
    prev: u32,
    next: u32,
    present: bool,
}

/// LRU order tracker over dense `u32` keys `0..capacity`.
///
/// The key doubles as the link-array index, so every operation is a
/// couple of direct loads/stores with no hashing. Grows automatically
/// if touched with a key at or past the current capacity.
#[derive(Debug, Default)]
pub struct DenseLru {
    nodes: Vec<DenseNode>,
    head: u32, // most recent
    tail: u32, // least recent
    len: usize,
}

impl DenseLru {
    /// Creates a tracker covering keys `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseLru {
            nodes: vec![
                DenseNode {
                    prev: DNIL,
                    next: DNIL,
                    present: false,
                };
                capacity
            ],
            head: DNIL,
            tail: DNIL,
            len: 0,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `key` is tracked.
    pub fn contains(&self, key: u32) -> bool {
        self.nodes
            .get(key as usize)
            .is_some_and(|node| node.present)
    }

    fn ensure(&mut self, key: u32) {
        if key as usize >= self.nodes.len() {
            self.nodes.resize(
                key as usize + 1,
                DenseNode {
                    prev: DNIL,
                    next: DNIL,
                    present: false,
                },
            );
        }
    }

    fn unlink(&mut self, key: u32) {
        let DenseNode { prev, next, .. } = self.nodes[key as usize];
        if prev != DNIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != DNIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, key: u32) {
        let head = self.head;
        {
            let node = &mut self.nodes[key as usize];
            node.prev = DNIL;
            node.next = head;
        }
        if head != DNIL {
            self.nodes[head as usize].prev = key;
        }
        self.head = key;
        if self.tail == DNIL {
            self.tail = key;
        }
    }

    /// Marks `key` as most recently used, inserting it if absent.
    /// Returns `true` if the key was already present.
    pub fn touch(&mut self, key: u32) -> bool {
        self.ensure(key);
        let was_present = self.nodes[key as usize].present;
        if was_present {
            if self.head == key {
                return true; // already MRU
            }
            self.unlink(key);
        } else {
            self.nodes[key as usize].present = true;
            self.len += 1;
        }
        self.push_front(key);
        was_present
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u32) -> bool {
        if !self.contains(key) {
            return false;
        }
        self.unlink(key);
        let node = &mut self.nodes[key as usize];
        node.present = false;
        node.prev = DNIL;
        node.next = DNIL;
        self.len -= 1;
        true
    }

    /// The least recently used key, if any.
    pub fn lru(&self) -> Option<u32> {
        (self.tail != DNIL).then_some(self.tail)
    }

    /// Iterates keys from least to most recently used.
    pub fn iter_lru_first(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.tail;
        std::iter::from_fn(move || {
            if cur == DNIL {
                return None;
            }
            let key = cur;
            cur = self.nodes[cur as usize].prev;
            Some(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker() {
        let mut t = LruTracker::new();
        assert!(t.is_empty());
        assert_eq!(t.lru(), None);
        assert_eq!(t.pop_lru(), None);
        assert!(!t.remove(1));
    }

    #[test]
    fn touch_orders_by_recency() {
        let mut t = LruTracker::new();
        for k in [1, 2, 3] {
            assert!(!t.touch(k));
        }
        assert_eq!(t.lru(), Some(1));
        assert!(t.touch(1)); // now most recent
        assert_eq!(t.lru(), Some(2));
        assert_eq!(t.iter_lru_first().collect::<Vec<_>>(), vec![2, 3, 1]);
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut t = LruTracker::new();
        for k in 0..5 {
            t.touch(k);
        }
        t.touch(0);
        let order: Vec<u64> = std::iter::from_fn(|| t.pop_lru()).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 0]);
        assert!(t.is_empty());
    }

    #[test]
    fn remove_middle_keeps_links_sound() {
        let mut t = LruTracker::new();
        for k in 0..4 {
            t.touch(k);
        }
        assert!(t.remove(2));
        assert_eq!(t.iter_lru_first().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert!(!t.contains(2));
        // Slot reuse after removal.
        t.touch(9);
        assert_eq!(t.len(), 4);
        assert_eq!(t.lru(), Some(0));
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut t = LruTracker::new();
        for i in 0..10_000u64 {
            t.touch(i % 37);
            if i % 5 == 0 {
                t.remove((i + 3) % 37);
            }
        }
        // Internal map and list agree on length.
        assert_eq!(t.iter_lru_first().count(), t.len());
        assert!(t.len() <= 37);
    }
}
