//! Behavioural tests of the flash cache: hit/miss flows, out-of-place
//! writes, GC, eviction, wear levelling, controller reconfiguration, and
//! full structural invariants after heavy churn.

#![allow(deprecated)] // legacy entry-point shims are intentionally exercised

use nand_flash::{CellMode, FlashConfig, FlashGeometry, WearConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::FlashCache;
use crate::config::{ControllerPolicy, FlashCacheConfig, SplitPolicy};

/// A small cache: 16 blocks × 8 physical pages = 256 slots.
fn small_config() -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 16,
                pages_per_block: 8,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    }
}

fn small_cache() -> FlashCache {
    FlashCache::new(small_config()).unwrap()
}

#[test]
fn read_miss_then_hit() {
    let mut c = small_cache();
    let first = c.read(100);
    assert!(!first.hit);
    assert!(first.needs_disk_read);
    let second = c.read(100);
    assert!(second.hit);
    assert!(!second.needs_disk_read);
    // MLC read (50µs) plus ECC decode at t=1.
    assert!(second.latency_us > 50.0);
    assert_eq!(c.stats().reads, 2);
    assert_eq!(c.stats().read_hits, 1);
    c.check_invariants().unwrap();
}

#[test]
fn write_then_read_hits() {
    let mut c = small_cache();
    let w = c.write(55);
    assert!(!w.hit);
    assert!(!w.needs_disk_read, "writes never need a disk fetch");
    assert!(c.read(55).hit);
    c.check_invariants().unwrap();
}

#[test]
fn overwrite_is_out_of_place() {
    let mut c = small_cache();
    c.write(7);
    let programs_before = c.stats().flash_programs;
    let w = c.write(7);
    assert!(w.hit);
    // A second write programs a fresh slot rather than updating in place.
    assert_eq!(c.stats().flash_programs, programs_before + 1);
    // Exactly one mapping remains.
    assert_eq!(c.cached_pages(), 1);
    c.check_invariants().unwrap();
}

#[test]
fn write_invalidates_read_copy() {
    let mut c = small_cache();
    c.read(9); // fills read region
    let w = c.write(9); // §5.1: invalidate read copy, write region copy
    assert!(w.hit);
    assert_eq!(c.cached_pages(), 1);
    assert!(c.read(9).hit);
    c.check_invariants().unwrap();
}

#[test]
fn capacity_misses_trigger_eviction_not_growth() {
    let mut c = small_cache();
    // Touch far more pages than the cache holds.
    for p in 0..2_000u64 {
        c.read(p);
    }
    let stats = c.stats();
    assert!(stats.evictions > 0, "evictions must have happened");
    assert!(c.cached_pages() <= c.usable_slots());
    c.check_invariants().unwrap();
}

#[test]
fn write_churn_triggers_gc() {
    let mut c = small_cache();
    let mut rng = StdRng::seed_from_u64(1);
    // Repeatedly overwrite a small hot set that fits the write region:
    // overwrites generate invalid pages, so the write region must
    // garbage collect rather than evict.
    for _ in 0..5_000 {
        c.write(rng.gen_range(0..12));
    }
    let stats = c.stats();
    assert!(stats.gc_runs > 0, "write churn must trigger GC");
    assert!(stats.gc_time_us > 0.0);
    assert_eq!(c.cached_pages(), 12);
    c.check_invariants().unwrap();
}

#[test]
fn unified_and_split_both_survive_mixed_churn() {
    for split in [
        SplitPolicy::Unified,
        SplitPolicy::Split {
            write_fraction: 0.25,
        },
    ] {
        let mut c = FlashCache::new(FlashCacheConfig {
            split,
            ..small_config()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4_000 {
            let p = rng.gen_range(0..300u64);
            if rng.gen_bool(0.3) {
                c.write(p);
            } else {
                c.read(p);
            }
        }
        c.check_invariants()
            .unwrap_or_else(|e| panic!("{split:?}: {e}"));
        assert!(c.stats().reads + c.stats().writes == 4_000);
    }
}

#[test]
fn split_beats_unified_miss_rate_under_write_pressure() {
    // The Figure 4 effect in miniature: with writes interleaved, the
    // split cache contains GC damage to 10% of the blocks.
    let run = |split: SplitPolicy| {
        let mut c = FlashCache::new(FlashCacheConfig {
            split,
            flash: FlashConfig {
                geometry: FlashGeometry {
                    blocks: 32,
                    pages_per_block: 16,
                    ..FlashGeometry::default()
                },
                ..FlashConfig::default()
            },
            ..FlashCacheConfig::default()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        // Zipf-ish: hot reads over 600 pages, scattered writes.
        for _ in 0..30_000 {
            if rng.gen_bool(0.25) {
                c.write(rng.gen_range(0..3_000u64));
            } else {
                c.read(rng.gen_range(0..600u64));
            }
        }
        c.check_invariants().unwrap();
        c.stats().read_miss_rate()
    };
    let unified = run(SplitPolicy::Unified);
    let split = run(SplitPolicy::Split {
        write_fraction: 0.10,
    });
    assert!(
        split <= unified + 0.02,
        "split read miss rate {split:.3} should not exceed unified {unified:.3}"
    );
}

#[test]
fn flush_writes_cleans_dirty_pages() {
    let mut c = small_cache();
    for p in 0..10 {
        c.write(p);
    }
    let flushed = c.flush_writes();
    assert_eq!(flushed, 10);
    assert_eq!(c.flush_writes(), 0, "second flush has nothing to do");
}

#[test]
fn eviction_of_dirty_block_reports_flushes() {
    // Tiny write region: dirty evictions must surface flush counts.
    let mut c = FlashCache::new(FlashCacheConfig {
        split: SplitPolicy::Split {
            write_fraction: 0.25,
        },
        ..small_config()
    })
    .unwrap();
    let mut total_flushed = 0u64;
    for p in 0..4_000u64 {
        let out = c.write(p); // all distinct: no invalidation, pure pressure
        total_flushed += out.flushed_dirty as u64;
    }
    assert!(
        total_flushed > 0,
        "writing 4000 distinct pages through a tiny write region must flush"
    );
    assert_eq!(c.stats().flushed_dirty_pages, total_flushed);
    c.check_invariants().unwrap();
}

#[test]
fn hot_pages_get_promoted_to_slc() {
    let mut c = small_cache();
    c.read(1);
    let threshold = c.config().hot_threshold as usize;
    for _ in 0..threshold + 2 {
        c.read(1);
    }
    let stats = c.stats();
    assert_eq!(stats.hot_promotions, 1, "exactly one promotion");
    assert_eq!(stats.reconfig_density, 1);
    assert!(c.slc_fraction() > 0.0);
    // Promotion preserves the cached data.
    assert!(c.read(1).hit);
    c.check_invariants().unwrap();
}

#[test]
fn fixed_controller_never_reconfigures() {
    let mut c = FlashCache::new(FlashCacheConfig {
        controller: ControllerPolicy::FixedEcc { strength: 1 },
        ..small_config()
    })
    .unwrap();
    for p in 0..200u64 {
        c.read(p % 20);
    }
    let stats = c.stats();
    assert_eq!(stats.reconfig_ecc, 0);
    assert_eq!(stats.reconfig_density, 0);
    assert_eq!(stats.hot_promotions, 0);
}

#[test]
fn worn_device_reconfigures_and_eventually_retires() {
    // Heavy acceleration so wear failures appear within the test budget.
    let mut c = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 8,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            wear: WearConfig {
                spatial_sigma_decades: 0.1,
                ..WearConfig::default()
            }
            .accelerated(5e3),
            ..FlashConfig::default()
        },
        ..small_config()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut steps = 0u64;
    while !c.is_dead() && steps < 3_000_000 {
        let p = rng.gen_range(0..200u64);
        if rng.gen_bool(0.6) {
            c.write(p);
        } else {
            c.read(p);
        }
        steps += 1;
    }
    let stats = c.stats();
    assert!(
        stats.reconfig_ecc + stats.reconfig_density > 0,
        "wear must trigger reconfiguration"
    );
    assert!(stats.retired_blocks > 0, "blocks must retire under wear");
    assert!(c.is_dead(), "device must die within the step budget");
    assert!(c.read(1).bypassed, "dead cache passes reads to disk");
    assert!(c.write(1).bypassed, "dead cache passes writes to disk");
}

#[test]
fn bch1_dies_much_sooner_than_programmable() {
    // The Figure 12 effect in miniature.
    let lifetime = |controller: ControllerPolicy| {
        let mut c = FlashCache::new(FlashCacheConfig {
            controller,
            flash: FlashConfig {
                geometry: FlashGeometry {
                    blocks: 8,
                    pages_per_block: 4,
                    ..FlashGeometry::default()
                },
                wear: WearConfig {
                    spatial_sigma_decades: 0.1,
                    ..WearConfig::default()
                }
                .accelerated(5e3),
                ..FlashConfig::default()
            },
            ..small_config()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut steps = 0u64;
        while !c.is_dead() && steps < 5_000_000 {
            let p = rng.gen_range(0..200u64);
            if rng.gen_bool(0.6) {
                c.write(p);
            } else {
                c.read(p);
            }
            steps += 1;
        }
        steps
    };
    let fixed = lifetime(ControllerPolicy::FixedEcc { strength: 1 });
    let programmable = lifetime(ControllerPolicy::Programmable);
    assert!(
        programmable > 3 * fixed,
        "programmable {programmable} vs fixed {fixed}: expected a large lifetime win"
    );
}

#[test]
fn wear_levelling_migrates_cold_blocks() {
    // Pin a cold block by reading a set once, then hammer writes so the
    // erase counts diverge and the threshold trips.
    let mut c = FlashCache::new(FlashCacheConfig {
        wear_threshold: 20.0,
        ..small_config()
    })
    .unwrap();
    for p in 0..100u64 {
        c.read(p);
    }
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..30_000 {
        c.write(rng.gen_range(0..30u64));
    }
    assert!(
        c.stats().wear_migrations > 0,
        "diverging wear must trigger newest-block migration"
    );
    c.check_invariants().unwrap();
}

#[test]
fn stats_reset_keeps_contents() {
    let mut c = small_cache();
    c.read(5);
    c.reset_stats();
    assert_eq!(c.stats().reads, 0);
    assert!(c.read(5).hit, "contents survive a stats reset");
}

#[test]
fn ecc_only_policy_never_switches_density() {
    let mut c = FlashCache::new(FlashCacheConfig {
        controller: ControllerPolicy::EccOnly,
        flash: FlashConfig {
            wear: WearConfig::default().accelerated(5e3),
            ..small_config().flash
        },
        ..small_config()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..100_000 {
        let p = rng.gen_range(0..100u64);
        if rng.gen_bool(0.5) {
            c.write(p);
        } else {
            c.read(p);
        }
        if c.is_dead() {
            break;
        }
    }
    assert_eq!(c.stats().reconfig_density, 0);
    assert_eq!(c.slc_fraction(), 0.0);
}

#[test]
fn invariants_hold_under_long_random_churn() {
    let mut c = FlashCache::new(FlashCacheConfig {
        split: SplitPolicy::Split {
            write_fraction: 0.2,
        },
        ..small_config()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..20_000 {
        let p = rng.gen_range(0..500u64);
        match rng.gen_range(0..10) {
            0..=5 => {
                c.read(p);
            }
            6..=8 => {
                c.write(p);
            }
            _ => {
                c.flush_writes();
            }
        }
        if i % 5_000 == 0 {
            c.check_invariants().unwrap();
        }
    }
    c.check_invariants().unwrap();
}

#[test]
fn cached_pages_unique_per_disk_page() {
    let mut c = small_cache();
    for _ in 0..50 {
        c.write(11);
        c.read(11);
    }
    assert_eq!(c.cached_pages(), 1, "one mapping per disk page, ever");
}

#[test]
fn slc_default_mode_halves_capacity_but_works() {
    let mut c = FlashCache::new(FlashCacheConfig {
        default_mode: CellMode::Slc,
        ..small_config()
    })
    .unwrap();
    for p in 0..300u64 {
        c.read(p);
    }
    c.check_invariants().unwrap();
    assert!(c.read(299).hit);
    // SLC hit latency (25µs + decode) is lower than the MLC default.
    let mut mlc = small_cache();
    for p in 0..300u64 {
        mlc.read(p);
    }
    let slc_hit = c.read(299).latency_us;
    let mlc_hit = mlc.read(299).latency_us;
    assert!(slc_hit < mlc_hit);
}
