//! Differential property test of the incremental reclaim index.
//!
//! Random read/write/flush workloads drive a small cache hard past
//! capacity, so every trajectory exercises GC compaction, block-LRU
//! eviction, wear-level swaps, and (on long runs) retirement. After
//! every operation, `check_invariants` cross-checks the index contents
//! against an FBST recount *and* replays all four victim queries on
//! both the index and the retained O(blocks) scan oracles, requiring
//! identical ordering keys (invalid count, LRU timestamp, wear cost) —
//! ties may break toward different blocks, keys may not differ.

use proptest::prelude::*;

use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig, SplitPolicy};
use nand_flash::{FlashConfig, FlashGeometry, WearConfig};

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64),
    Flush,
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..pages).prop_map(Op::Read),
        4 => (0..pages).prop_map(Op::Write),
        1 => Just(Op::Flush),
    ]
}

fn tiny_config(blocks: u32, unified: bool) -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        split: if unified {
            SplitPolicy::Unified
        } else {
            SplitPolicy::default()
        },
        // Low threshold so wear-level swaps actually trigger within a
        // few hundred operations on a tiny device.
        wear_threshold: 8.0,
        ..FlashCacheConfig::default()
    }
}

fn run_workload(mut cache: FlashCache, ops: &[Op]) -> Result<(), TestCaseError> {
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Read(p) => {
                cache.op(CacheOp::read(p));
            }
            Op::Write(p) => {
                cache.op(CacheOp::write(p));
            }
            Op::Flush => {
                cache.flush_writes();
            }
        }
        if let Err(e) = cache.check_invariants() {
            return Err(TestCaseError::fail(format!("after op {i} {op:?}: {e}")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Split-region cache: index victims carry the same keys as the
    /// scan oracles across randomized workloads.
    #[test]
    fn index_matches_scan_oracles_split(
        blocks in 8u32..24,
        ops in prop::collection::vec(op_strategy(160), 50..400),
    ) {
        let cache = FlashCache::new(tiny_config(blocks, false)).unwrap();
        run_workload(cache, &ops)?;
    }

    /// Unified pool: same differential with every block folded onto the
    /// read region.
    #[test]
    fn index_matches_scan_oracles_unified(
        blocks in 8u32..24,
        ops in prop::collection::vec(op_strategy(160), 50..400),
    ) {
        let cache = FlashCache::new(tiny_config(blocks, true)).unwrap();
        run_workload(cache, &ops)?;
    }

    /// Disabling query routing must not change behaviour: scans answer,
    /// the index is still maintained, and both stay consistent.
    #[test]
    fn scan_dispatch_keeps_index_consistent(
        ops in prop::collection::vec(op_strategy(120), 50..250),
    ) {
        let mut config = tiny_config(12, false);
        config.use_reclaim_index = false;
        let cache = FlashCache::new(config).unwrap();
        run_workload(cache, &ops)?;
    }
}

/// Driving a tiny cache to total wear-out keeps index and oracles in
/// agreement through every retirement, including the endgame where the
/// spare blocks are consumed.
#[test]
fn index_consistent_through_wear_out() {
    let mut config = tiny_config(8, false);
    // Heavy acceleration so the device dies within the test budget.
    config.flash.wear = WearConfig::default().accelerated(1e6);
    let mut cache = FlashCache::new(config).unwrap();
    let mut i = 0u64;
    while !cache.is_dead() && i < 200_000 {
        cache.op(CacheOp::write(i % 64));
        if i.is_multiple_of(512) {
            cache.check_invariants().unwrap();
        }
        i += 1;
    }
    cache.check_invariants().unwrap();
    assert!(
        cache.stats().retired_blocks > 0,
        "workload never retired a block"
    );
}
