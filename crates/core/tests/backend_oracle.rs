//! Pinned differential: the oracle contract at the cache layer.
//!
//! A [`FlashCache`] whose device runs the event-driven timing backend in
//! the serial-mimic configuration (1 channel, 1 plane, depth 1, no
//! transfer time, no write buffering) must be **byte-identical** to the
//! same cache on the closed-form backend: same per-access outcomes
//! (latency bits included), same stats, same table snapshot, same
//! exported metrics, same observability registry. This is what makes the
//! closed-form arithmetic the differential oracle for every scheduler
//! change.

use std::sync::Arc;

use disk_trace::{OpKind, WorkloadSpec};
use flash_obs::ObsSink;
use flashcache_core::{AccessOutcome, CacheOp, FlashCache, FlashCacheConfig};
use nand_flash::{ChannelConfig, FlashConfig, FlashGeometry, TimingBackend};

/// Small geometry so the trace overflows the cache and exercises fills,
/// eviction, GC, and erase traffic — every maintenance path that now
/// routes through the timing model.
fn config(backend: TimingBackend) -> FlashCacheConfig {
    FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 128,
                pages_per_block: 32,
                ..FlashGeometry::default()
            },
            timing_backend: backend,
            channel: ChannelConfig::default(),
            ..FlashConfig::default()
        })
        .build()
        .expect("test geometry is valid")
}

fn drive(cache: &mut FlashCache, seed: u64, n: usize) -> Vec<AccessOutcome> {
    let reqs = WorkloadSpec::alpha1()
        .scaled(64)
        .generator(seed)
        .take_requests(n);
    let mut outs = Vec::new();
    for req in &reqs {
        for page in req.pages() {
            outs.push(match req.op {
                OpKind::Read => cache.op(CacheOp::read(page)).access,
                OpKind::Write => cache.op(CacheOp::write(page)).access,
            });
        }
    }
    outs
}

#[test]
fn serial_event_backend_is_byte_identical_to_closed_form() {
    let mut oracle = FlashCache::new(config(TimingBackend::ClosedForm)).expect("valid config");
    let mut event = FlashCache::new(config(TimingBackend::EventDriven)).expect("valid config");
    let oracle_sink = Arc::new(ObsSink::with_capacity(256));
    let event_sink = Arc::new(ObsSink::with_capacity(256));
    oracle.attach_sink(Arc::clone(&oracle_sink));
    event.attach_sink(Arc::clone(&event_sink));

    let a = drive(&mut oracle, 0x0811_2026, 6_000);
    let b = drive(&mut event, 0x0811_2026, 6_000);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "outcome diverged at access {i}");
        assert_eq!(
            x.latency_us.to_bits(),
            y.latency_us.to_bits(),
            "latency bits diverged at access {i}"
        );
        assert_eq!(y.queue_wait_us.to_bits(), 0.0f64.to_bits());
        assert_eq!(
            x.background_us.to_bits(),
            y.background_us.to_bits(),
            "background bits diverged at access {i}"
        );
    }

    assert_eq!(oracle.stats(), event.stats(), "cache stats must match");
    assert_eq!(
        oracle.snapshot(),
        event.snapshot(),
        "table snapshot must match"
    );
    assert_eq!(
        oracle.export_metrics(),
        event.export_metrics(),
        "metric registries must match"
    );

    oracle.flush_obs();
    event.flush_obs();
    assert_eq!(
        oracle_sink.registry(),
        event_sink.registry(),
        "observability registries must match"
    );
}

/// The non-serial event backend keeps the same *functional* behaviour
/// (hits, misses, table contents) while the timing diverges: GC and fill
/// traffic now overlaps across channels, so queue wait becomes visible
/// and accumulated device wait is non-zero.
#[test]
fn parallel_event_backend_preserves_functional_behaviour() {
    let parallel = {
        let mut cfg = config(TimingBackend::EventDriven);
        cfg.flash.channel = ChannelConfig::builder()
            .channels(4)
            .planes(2)
            .queue_depth(4)
            .build()
            .expect("valid channel config");
        cfg
    };
    let mut oracle = FlashCache::new(config(TimingBackend::ClosedForm)).expect("valid config");
    let mut event = FlashCache::new(parallel).expect("valid config");

    let a = drive(&mut oracle, 0x0811_2026, 6_000);
    let b = drive(&mut event, 0x0811_2026, 6_000);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.hit, y.hit, "hit/miss diverged at access {i}");
        assert_eq!(x.tier, y.tier, "service tier diverged at access {i}");
        assert_eq!(
            x.needs_disk_read, y.needs_disk_read,
            "disk routing diverged at access {i}"
        );
    }
    // Placement must not depend on timing: compare the structural
    // snapshot fields (the embedded stats/FGST legitimately differ in
    // their time sums, since latency now includes queue wait).
    let sa = oracle.snapshot();
    let sb = event.snapshot();
    assert_eq!(sa.tick, sb.tick);
    assert_eq!(sa.cached_pages, sb.cached_pages);
    assert_eq!(sa.usable_slots, sb.usable_slots);
    assert_eq!(sa.slc_fraction, sb.slc_fraction);
    assert_eq!(
        sa.regions, sb.regions,
        "region state must not depend on timing"
    );
    assert_eq!(
        sa.blocks, sb.blocks,
        "block placement must not depend on timing"
    );
    assert_eq!(sa.wear, sb.wear);

    let s = oracle.stats();
    let p = event.stats();
    assert_eq!((s.reads, s.writes, s.erases), (p.reads, p.writes, p.erases));
    assert_eq!(s.flash_reads, p.flash_reads);
    assert_eq!(s.flash_programs, p.flash_programs);
    assert_eq!(
        oracle.device().stats().wait_us,
        0.0,
        "closed form never queues"
    );
    assert!(
        event.device().stats().wait_us > 0.0,
        "parallel backend must observe queue wait from background traffic"
    );
}
