//! Property-based tests of the cache's supporting structures against
//! naive reference models.

use proptest::prelude::*;
use std::collections::HashMap;

use flashcache_core::lru::LruTracker;
use flashcache_core::pdc::PrimaryDiskCache;

#[derive(Debug, Clone, Copy)]
enum LruOp {
    Touch(u64),
    Remove(u64),
    PopLru,
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        5 => (0u64..50).prop_map(LruOp::Touch),
        2 => (0u64..50).prop_map(LruOp::Remove),
        1 => Just(LruOp::PopLru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(1) LRU tracker behaves identically to a naive Vec-based
    /// recency list.
    #[test]
    fn lru_matches_naive_model(ops in prop::collection::vec(lru_op(), 1..300)) {
        let mut fast = LruTracker::new();
        let mut naive: Vec<u64> = Vec::new(); // front = most recent
        for op in ops {
            match op {
                LruOp::Touch(k) => {
                    fast.touch(k);
                    naive.retain(|&x| x != k);
                    naive.insert(0, k);
                }
                LruOp::Remove(k) => {
                    let was = fast.remove(k);
                    let had = naive.contains(&k);
                    naive.retain(|&x| x != k);
                    prop_assert_eq!(was, had);
                }
                LruOp::PopLru => {
                    let got = fast.pop_lru();
                    let expect = naive.pop();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(fast.len(), naive.len());
            prop_assert_eq!(fast.lru(), naive.last().copied());
        }
        let order: Vec<u64> = fast.iter_lru_first().collect();
        let expect: Vec<u64> = naive.iter().rev().copied().collect();
        prop_assert_eq!(order, expect);
    }

    /// The PDC behaves like a naive LRU cache with dirty bits: same
    /// hits, same evictions, same flush sets, capacity never exceeded.
    #[test]
    fn pdc_matches_naive_model(
        capacity in 1usize..12,
        ops in prop::collection::vec((0u64..30, any::<bool>()), 1..200),
    ) {
        let mut pdc = PrimaryDiskCache::new(capacity);
        let mut naive_order: Vec<u64> = Vec::new(); // front = MRU
        let mut naive_dirty: HashMap<u64, bool> = HashMap::new();
        for (page, dirty) in ops {
            let evicted = pdc.insert(page, dirty);
            if let Some(d) = naive_dirty.get_mut(&page) {
                *d |= dirty;
                naive_order.retain(|&x| x != page);
                naive_order.insert(0, page);
                prop_assert!(evicted.is_none());
            } else {
                let expected_evict = if naive_order.len() >= capacity {
                    let victim = naive_order.pop().unwrap();
                    Some((victim, naive_dirty.remove(&victim).unwrap()))
                } else {
                    None
                };
                naive_order.insert(0, page);
                naive_dirty.insert(page, dirty);
                prop_assert_eq!(
                    evicted.map(|e| (e.page, e.dirty)),
                    expected_evict
                );
            }
            prop_assert!(pdc.len() <= capacity);
            prop_assert_eq!(pdc.len(), naive_order.len());
        }
        // Flush returns exactly the dirty set.
        let mut flushed = pdc.flush_dirty();
        flushed.sort_unstable();
        let mut expect: Vec<u64> = naive_dirty
            .iter()
            .filter(|(_, &d)| d)
            .map(|(&p, _)| p)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(flushed, expect);
        prop_assert!(pdc.flush_dirty().is_empty());
    }
}
