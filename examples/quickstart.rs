//! Quickstart: build a flash disk cache, exercise it, inspect what the
//! controller and garbage collector did.
//!
//! ```sh
//! cargo run --release -p flashcache --example quickstart
//! ```

use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::{CacheOp, FlashCache, FlashCacheConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64MB (MLC) flash disk cache with the paper's defaults:
    // 90/10 read/write split, MLC-first, programmable controller.
    let config = FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry::for_mlc_capacity(64 << 20),
            ..FlashConfig::default()
        })
        .build()?;
    let mut cache = FlashCache::new(config)?;

    // Cold read: the cache reports that the disk must be consulted and
    // fills itself in the background.
    let first = cache.op(CacheOp::read(1000)).access;
    println!(
        "first read : hit={} needs_disk={} latency={:.0}us",
        first.hit, first.needs_disk_read, first.latency_us
    );

    // Warm read: served from flash at MLC read latency + ECC decode.
    let second = cache.op(CacheOp::read(1000)).access;
    println!(
        "second read: hit={} latency={:.0}us (MLC read + BCH decode)",
        second.hit, second.latency_us
    );

    // Writes always go out-of-place into the write region.
    for i in 0..5_000u64 {
        cache.op(CacheOp::write(i % 600));
    }
    // Reads of recently written pages hit the write cache.
    assert!(cache.op(CacheOp::read(42)).access.hit);

    // Re-read one page often enough and the controller migrates it from
    // MLC to a fast SLC page (§5.2.2).
    for _ in 0..20 {
        cache.op(CacheOp::read(1000));
    }
    let hot = cache.op(CacheOp::read(1000)).access;
    println!(
        "hot read   : latency={:.0}us (now SLC: 25us array + decode)",
        hot.latency_us
    );

    println!("\ncache statistics:\n{}", cache.stats());
    println!(
        "\nSLC fraction: {:.2}% of physical pages",
        cache.slc_fraction() * 100.0
    );
    Ok(())
}
