//! A web server's storage stack: compare a DRAM-only disk cache with a
//! smaller DRAM + flash secondary cache on a SPECWeb99-like workload —
//! the scenario that motivates the paper (Figures 2 and 9).
//!
//! ```sh
//! cargo run --release -p flashcache --example web_server_cache
//! ```

use flashcache::core::FlashCacheConfig;
use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::sim::server::run_server_warm;
use flashcache::{HierarchyConfig, ServerConfig, WorkloadSpec};

fn main() {
    // Scale the 1.8GB SPECWeb image down 32x so the example runs in
    // seconds; the comparison is shape-preserving.
    let workload = WorkloadSpec::specweb99().scaled(32);
    let server = ServerConfig::default();
    let warmup = 60_000;
    let requests = 40_000;

    println!(
        "workload: {} ({}MB working set)\n",
        workload.name,
        workload.footprint_bytes() >> 20
    );

    let baseline = run_server_warm(
        HierarchyConfig {
            dram_bytes: 16 << 20, // 16MB DRAM page cache
            flash: None,
            ..HierarchyConfig::default()
        },
        &workload,
        warmup,
        requests,
        42,
        server,
    );
    let flash_cfg = FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry::for_mlc_capacity(64 << 20),
            ..FlashConfig::default()
        })
        .build()
        .expect("web-server flash config is valid");
    let with_flash = run_server_warm(
        HierarchyConfig {
            dram_bytes: 4 << 20, // 4MB DRAM + 64MB flash
            flash: Some(flash_cfg),
            ..HierarchyConfig::default()
        },
        &workload,
        warmup,
        requests,
        42,
        server,
    );

    for (label, r) in [
        ("DRAM-only (16MB)", &baseline),
        ("DRAM 4MB + flash 64MB", &with_flash),
    ] {
        println!("{label}:");
        println!(
            "  network bandwidth : {:>8.2} MB/s ({:?}-bound)",
            r.network_mbps, r.bottleneck
        );
        println!(
            "  disk busy         : {:>8.2} s",
            r.power_inputs.disk_busy_s
        );
        println!(
            "  memory+disk power : {:>8.2} W (mem idle {:.3} W, flash {:.3} W)",
            r.memory_and_disk_power_w(),
            r.dram_power.idle_w,
            r.flash_power_w
        );
        println!(
            "  disk read share   : {:>7.1} %\n",
            r.disk_read_fraction * 100.0
        );
    }
    println!(
        "bandwidth gain: {:.2}x | disk work saved: {:.1}%",
        with_flash.network_mbps / baseline.network_mbps,
        100.0 * (1.0 - with_flash.power_inputs.disk_busy_s / baseline.power_inputs.disk_busy_s)
    );
}
