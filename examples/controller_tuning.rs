//! Tuning the programmable controller: how the hot-page promotion
//! threshold trades SLC capacity against hit latency, and what each
//! policy ablation gives up.
//!
//! ```sh
//! cargo run --release -p flashcache --example controller_tuning
//! ```

use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::{CacheOp, ControllerPolicy, FlashCache, FlashCacheConfig, WorkloadSpec};

fn run(config: FlashCacheConfig, label: &str) {
    let mut cache = FlashCache::new(config).expect("valid config");
    let mut generator = WorkloadSpec::alpha2().scaled(256).generator(11);
    // Warm, then measure.
    for phase in 0..2 {
        if phase == 1 {
            cache.reset_stats();
        }
        let mut n = 0u64;
        while n < 400_000 {
            let req = generator.next_request();
            for page in req.pages() {
                if req.is_write() {
                    cache.op(CacheOp::write(page));
                } else {
                    cache.op(CacheOp::read(page));
                }
                n += 1;
            }
        }
    }
    let s = cache.stats();
    let avg_hit_us = if s.read_hits > 0 {
        s.foreground_us / s.read_hits as f64
    } else {
        0.0
    };
    println!(
        "{label:<28} read miss {:>5.1}%  avg hit {:>6.1}us  SLC {:>5.1}%  promotions {:>6}",
        s.read_miss_rate() * 100.0,
        avg_hit_us,
        cache.slc_fraction() * 100.0,
        s.hot_promotions
    );
}

fn main() {
    let base = || {
        FlashCacheConfig::builder()
            .flash(FlashConfig {
                geometry: FlashGeometry::for_mlc_capacity(4 << 20),
                ..FlashConfig::default()
            })
            .build()
            .expect("base tuning config is valid")
    };

    println!("Zipf(1.2) workload, 4MB flash (2MB working set)\n");
    println!("-- hot-promotion threshold sweep (lower = more eager SLC)");
    for threshold in [2u8, 4, 8, 16, 64] {
        let mut c = base();
        c.hot_threshold = threshold;
        run(c, &format!("hot_threshold = {threshold}"));
    }

    println!("\n-- controller policy ablation");
    for (name, policy) in [
        ("programmable", ControllerPolicy::Programmable),
        ("ECC only", ControllerPolicy::EccOnly),
        ("density only", ControllerPolicy::DensityOnly),
        ("fixed BCH-1", ControllerPolicy::FixedEcc { strength: 1 }),
    ] {
        let mut c = base();
        c.controller = policy;
        run(c, name);
    }
}
