//! OLTP write pressure and flash wear: watch the programmable controller
//! stretch device lifetime compared to a fixed BCH-1 controller.
//!
//! Wear is accelerated (endurance divided by 2e5) so whole-lifetime
//! behaviour is observable in seconds; the *relative* lifetime is
//! invariant under that scaling (§4.1.3 / Figure 12).
//!
//! ```sh
//! cargo run --release -p flashcache --example oltp_wear_management
//! ```

use flashcache::nand::{FlashConfig, FlashGeometry, WearConfig};
use flashcache::{CacheOp, ControllerPolicy, FlashCache, FlashCacheConfig, WorkloadSpec};

fn run_to_failure(policy: ControllerPolicy) -> (u64, flashcache::CacheStats) {
    let mut builder = FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 16,
                pages_per_block: 16,
                ..FlashGeometry::default()
            },
            wear: WearConfig::default().accelerated(2e5),
            ..FlashConfig::default()
        })
        .controller(policy);
    if let ControllerPolicy::FixedEcc { strength } = policy {
        builder = builder.initial_ecc(strength).max_ecc(strength);
    }
    let config = builder.build().expect("valid config");
    let mut cache = FlashCache::new(config).expect("valid config");
    let mut generator = WorkloadSpec::financial1().scaled(2048).generator(7);
    let mut accesses = 0u64;
    while !cache.is_dead() && accesses < 50_000_000 {
        let req = generator.next_request();
        for page in req.pages() {
            if req.is_write() {
                cache.op(CacheOp::write(page));
            } else {
                cache.op(CacheOp::read(page));
            }
            accesses += 1;
            if cache.is_dead() {
                break;
            }
        }
    }
    (accesses, cache.stats())
}

fn main() {
    println!("OLTP (Financial1-like) trace against a small flash cache,");
    println!("wear accelerated 200,000x. Running each controller to total");
    println!("flash failure...\n");

    let (bch1, bch1_stats) = run_to_failure(ControllerPolicy::FixedEcc { strength: 1 });
    println!("BCH-1 fixed controller:");
    println!("  lifetime: {bch1} accesses");
    println!("  {bch1_stats}\n");

    let (prog, prog_stats) = run_to_failure(ControllerPolicy::Programmable);
    println!("programmable controller (variable ECC + MLC->SLC):");
    println!("  lifetime: {prog} accesses");
    println!("  {prog_stats}\n");

    println!(
        "lifetime extension: {:.1}x (the paper reports ~20x on average)",
        prog as f64 / bch1.max(1) as f64
    );
}
