//! Trace round-trip: generate a synthetic workload, export it in the
//! UMass SPC format, read it back, and replay it — demonstrating that
//! the repository can consume the paper's original trace files when you
//! have them (§6.2).
//!
//! ```sh
//! cargo run --release -p flashcache --example trace_replay
//! # sharded replay: 4 concurrent flash shards, 256-request batches
//! cargo run --release -p flashcache --example trace_replay -- --shards 4 --batch 256
//! ```

use std::io::BufReader;

use flashcache::trace::spc::{write_spc, SpcReader};
use flashcache::{DiskRequest, Hierarchy, HierarchyConfig, WorkloadSpec};

fn parse_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("flag value must be a number"))
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = parse_flag("--shards", 1);
    let batch = parse_flag("--batch", 1).max(1);

    // 1. Generate a Financial1-like OLTP burst.
    let workload = WorkloadSpec::financial1().scaled(512);
    let mut generator = workload.generator(2024);
    let requests: Vec<DiskRequest> = (0..20_000).map(|_| generator.next_request()).collect();
    println!(
        "generated {} requests of {} ({}MB footprint)",
        requests.len(),
        workload.name,
        workload.footprint_bytes() >> 20
    );

    // 2. Export as SPC text (what trace repositories distribute).
    let mut spc_bytes = Vec::new();
    write_spc(&mut spc_bytes, requests.iter().copied())?;
    println!(
        "exported {} bytes of SPC text; first line: {}",
        spc_bytes.len(),
        String::from_utf8_lossy(&spc_bytes[..spc_bytes.iter().position(|&b| b == b'\n').unwrap()])
    );

    // 3. Read it back and verify the round trip is lossless.
    let parsed: Result<Vec<DiskRequest>, _> = SpcReader::new(BufReader::new(&spc_bytes[..]))
        .map(|r| r.map(|rec| rec.to_request()))
        .collect();
    let parsed = parsed?;
    assert_eq!(parsed, requests, "SPC round trip must be lossless");
    println!("round trip verified: {} records identical", parsed.len());

    // 4. Replay the trace through the full hierarchy — streamed
    //    straight off the SPC reader in batches (the same streaming
    //    iterator pattern `bench_replay` uses on the generator), so an
    //    arbitrarily long trace file never has to fit in memory.
    let mut hierarchy = Hierarchy::try_new(HierarchyConfig {
        dram_bytes: 1 << 20,
        flash_shards: shards,
        ..HierarchyConfig::default()
    })?;
    println!(
        "
replaying with {shards} flash shard(s), batches of {batch}"
    );
    let mut reader = SpcReader::new(BufReader::new(&spc_bytes[..]));
    let mut buf: Vec<DiskRequest> = Vec::with_capacity(batch);
    loop {
        buf.clear();
        for rec in reader.by_ref().take(batch) {
            buf.push(rec?.to_request());
        }
        if buf.is_empty() {
            break;
        }
        hierarchy.submit_batch(&buf);
    }
    hierarchy.drain();
    let report = hierarchy.report();
    println!(
        "\nreplay: {} requests, mean latency {:.1}us, p99 {:.1}us",
        report.requests,
        report.avg_latency_us(),
        report.latency.percentile_us(0.99)
    );
    println!(
        "served by DRAM {:.1}% | flash {:.1}% | disk {:.1}%",
        100.0 * report.dram_hit_pages as f64 / report.pages as f64,
        100.0 * report.flash_hit_pages as f64 / report.pages as f64,
        100.0 * report.disk_read_pages as f64 / report.pages as f64,
    );
    Ok(())
}
