//! End-to-end smoke runs of every experiment driver at miniature scale:
//! each figure's code path executes and its headline relationship holds.
//! (Full-scale shape checks live in the drivers' own unit tests and in
//! EXPERIMENTS.md.)

use flashcache::sim::experiments::curves::{decode_latency_curve, lifetime_curve};
use flashcache::sim::experiments::density_partition::{
    density_partition_curve, DensityPartitionParams, MLC_BYTES_PER_MM2,
};
use flashcache::sim::experiments::ecc_throughput::{ecc_throughput_curve, EccThroughputParams};
use flashcache::sim::experiments::gc_overhead::gc_overhead_curve;
use flashcache::sim::experiments::lifetime::{lifetime_comparison, LifetimeParams};
use flashcache::sim::experiments::power_bandwidth::{power_bandwidth, Fig9Params};
use flashcache::sim::experiments::reconfig_breakdown::{reconfig_breakdown, ReconfigParams};
use flashcache::sim::experiments::split_miss::{split_miss_curve, SplitMissParams};
use flashcache::WorkloadSpec;

#[test]
fn fig1b_smoke() {
    let pts = gc_overhead_curve(4 << 20, &[0.4, 0.9], 15_000, 1);
    assert_eq!(pts.len(), 2);
    assert!(pts[1].gc_overhead > pts[0].gc_overhead);
}

#[test]
fn fig4_smoke() {
    let params = SplitMissParams {
        workload: WorkloadSpec::dbt2().scaled(128),
        flash_sizes_bytes: vec![4 << 20],
        warmup_accesses: 30_000,
        measured_accesses: 30_000,
        seed: 2,
    };
    let pts = split_miss_curve(&params);
    assert_eq!(pts.len(), 1);
    assert!(pts[0].unified_miss_rate > 0.0 && pts[0].unified_miss_rate < 1.0);
    assert!(pts[0].split_gc_overhead <= pts[0].unified_gc_overhead + 0.05);
}

#[test]
fn fig6_smoke() {
    let lat = decode_latency_curve(2..=11);
    assert!(lat.last().unwrap().total_us > lat[0].total_us);
    let life = lifetime_curve(10);
    assert!(life[10].cycles_by_stdev[0] > life[0].cycles_by_stdev[0]);
}

#[test]
fn fig7_smoke() {
    let w = WorkloadSpec::financial2().scaled(8);
    let area = w.footprint_bytes() as f64 / MLC_BYTES_PER_MM2; // full WSS
    let pts = density_partition_curve(&w, &[area], &DensityPartitionParams::default(), 3);
    assert!(pts[0].latency_us < 200.0);
}

#[test]
fn fig9_smoke() {
    let (base, flash) = power_bandwidth(&Fig9Params::dbt2().scaled(256));
    assert!(flash.report.power_inputs.disk_busy_s <= base.report.power_inputs.disk_busy_s);
    assert!(flash.mem_idle_w < base.mem_idle_w);
}

#[test]
fn fig10_smoke() {
    let params = EccThroughputParams {
        strengths: vec![1, 40],
        requests: 15_000,
        ..EccThroughputParams::paper(WorkloadSpec::specweb99()).scaled(256)
    };
    let pts = ecc_throughput_curve(&params);
    assert!(pts[1].relative_bandwidth <= 1.0 + 1e-9);
}

#[test]
fn fig11_smoke() {
    let params = ReconfigParams {
        scale: 256,
        acceleration: 5e4,
        accesses: 300_000,
        min_events: 50,
        seed: 4,
    };
    let rows = reconfig_breakdown(&[WorkloadSpec::alpha2()], &params);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].ecc_events + rows[0].density_events > 0);
}

#[test]
fn fig12_smoke() {
    let params = LifetimeParams {
        scale: 4_096,
        acceleration: 1e6,
        budget: 4_000_000,
        seed: 5,
    };
    let rows = lifetime_comparison(&[WorkloadSpec::exp2()], &params);
    assert!(rows[0].programmable_accesses > rows[0].bch1_accesses);
}
