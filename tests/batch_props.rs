//! Property-based byte-identity tests for the batched cache-op path.
//!
//! Two contracts are pinned here:
//!
//! 1. **Batch = scalar.** [`FlashCache::op_batch`] with the prefetch
//!    pipeline enabled must be byte-identical to looping
//!    [`FlashCache::op`] — same outcomes in the same order, same
//!    snapshot, same stats, same exported metrics — for *every* batch
//!    size and every admission-policy × longevity-bucket combination.
//!    The pipeline only issues prefetch hints, so nothing observable
//!    may change (DESIGN.md §17).
//!
//! 2. **SWAR = bytewise.** The SWAR group probe and the byte-at-a-time
//!    oracle probe must visit candidate buckets in the same order, so
//!    two caches differing only in `fcht_swar_probe` stay in lock-step
//!    through arbitrary op sequences — including the probe counters,
//!    which are derived identically in both flavours.

use proptest::prelude::*;

use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::{AdmissionPolicyConfig, CacheOp, FlashCache, FlashCacheConfig};

/// A small cache so arbitrary op sequences exercise fills, evictions,
/// reclaim, and FCHT backward-shift deletion, not just cold inserts.
fn tiny_cache(
    admission: AdmissionPolicyConfig,
    longevity_buckets: u32,
    swar: bool,
    pipeline: bool,
) -> FlashCache {
    let config = FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 8,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        })
        .admission(admission)
        .longevity_buckets(longevity_buckets)
        .fcht_swar_probe(swar)
        .batch_pipeline(pipeline)
        .build()
        .expect("valid config");
    FlashCache::new(config).expect("valid cache")
}

fn admission_strategy() -> impl Strategy<Value = AdmissionPolicyConfig> {
    prop_oneof![
        Just(AdmissionPolicyConfig::AdmitAll),
        Just(AdmissionPolicyConfig::ReReference { k: 1, window: 64 }),
        Just(AdmissionPolicyConfig::WriteCap {
            pages_per_window: 8,
            window: 32,
            coalesce: true,
        }),
    ]
}

fn op_strategy(pages: u64) -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0..pages).prop_map(CacheOp::read),
        (0..pages).prop_map(CacheOp::write),
    ]
}

/// Asserts every externally observable surface of the two caches is
/// equal: snapshot (tables, regions, wear), stats, and the exported
/// metrics registry (which includes the FCHT probe counters).
fn assert_observably_equal(a: &FlashCache, b: &FlashCache) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.snapshot(), b.snapshot());
    prop_assert_eq!(a.stats(), b.stats());
    prop_assert_eq!(a.export_metrics(), b.export_metrics());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `op_batch` with the pipeline on is byte-identical to the scalar
    /// `op` loop for every chunking of the op stream, under every
    /// admission policy and longevity-bucket setting.
    #[test]
    fn op_batch_matches_scalar_for_all_batch_sizes(
        ops in prop::collection::vec(op_strategy(120), 1..300),
        admission in admission_strategy(),
        longevity_buckets in prop_oneof![Just(1u32), Just(4u32)],
        // 1 and 2 degenerate the pipeline; 7 straddles the prefetch
        // window; usize::MAX clamps to a single whole-trace batch.
        chunk in prop_oneof![Just(1usize), Just(2), Just(7), Just(usize::MAX)],
    ) {
        let mut scalar = tiny_cache(admission, longevity_buckets, true, false);
        let mut batched = tiny_cache(admission, longevity_buckets, true, true);

        let mut scalar_outs = Vec::with_capacity(ops.len());
        for &op in &ops {
            scalar_outs.push(scalar.op(op));
        }

        let chunk = chunk.min(ops.len());
        let mut batched_outs = Vec::with_capacity(ops.len());
        for group in ops.chunks(chunk) {
            batched.op_batch_into(group, &mut batched_outs);
        }

        prop_assert_eq!(scalar_outs, batched_outs);
        assert_observably_equal(&scalar, &batched)?;
    }

    /// Two caches differing only in the FCHT probe flavour (SWAR group
    /// probe vs the byte-at-a-time oracle) stay in lock-step through
    /// arbitrary op sequences: identical outcomes, tables, stats, and
    /// probe counters.
    #[test]
    fn swar_probe_matches_bytewise_oracle(
        ops in prop::collection::vec(op_strategy(120), 1..300),
        admission in admission_strategy(),
        longevity_buckets in prop_oneof![Just(1u32), Just(4u32)],
    ) {
        let mut swar = tiny_cache(admission, longevity_buckets, true, true);
        let mut bytewise = tiny_cache(admission, longevity_buckets, false, false);

        let swar_outs = swar.op_batch(&ops);
        let mut bytewise_outs = Vec::with_capacity(ops.len());
        for &op in &ops {
            bytewise_outs.push(bytewise.op(op));
        }

        prop_assert_eq!(swar_outs, bytewise_outs);
        assert_observably_equal(&swar, &bytewise)?;
    }

    /// Densely hammering a small page range forces FCHT chains across
    /// group boundaries and exercises backward-shift deletion under
    /// reclaim; the cross-gate registries (including probe-counter
    /// metrics) must still match exactly.
    #[test]
    fn dense_churn_keeps_probe_flavours_in_lock_step(
        ops in prop::collection::vec(op_strategy(40), 50..400),
    ) {
        let mut swar = tiny_cache(AdmissionPolicyConfig::AdmitAll, 1, true, true);
        let mut bytewise = tiny_cache(AdmissionPolicyConfig::AdmitAll, 1, false, false);

        let swar_outs = swar.op_batch(&ops);
        let bytewise_outs = bytewise.op_batch(&ops);

        prop_assert_eq!(swar_outs, bytewise_outs);
        assert_observably_equal(&swar, &bytewise)?;
    }
}

/// Deterministic spot-check that `op_batch_into` appends (does not
/// clear) and that the empty batch is a no-op — the contract hot loops
/// rely on when reusing one outcome buffer across chunks.
#[test]
fn op_batch_into_appends_and_handles_empty() {
    let mut cache = tiny_cache(AdmissionPolicyConfig::AdmitAll, 1, true, true);
    let mut out = Vec::new();
    cache.op_batch_into(&[], &mut out);
    assert!(out.is_empty());
    cache.op_batch_into(&[CacheOp::write(3)], &mut out);
    cache.op_batch_into(&[CacheOp::read(3)], &mut out);
    assert_eq!(out.len(), 2);
    assert!(out[1].access.hit, "write(3) then read(3) must hit");
}
