//! Property-based tests spanning crates: arbitrary operation sequences
//! against the cache hierarchy must preserve structural invariants and
//! model-level contracts.

use proptest::prelude::*;

use flashcache::ecc::page::{PageCodec, PAGE_DATA_BYTES};
use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::reliability::CellLifetimeModel;
use flashcache::{CacheOp, FlashCache, FlashCacheConfig, SplitPolicy};

fn tiny_cache(split_write_fraction: Option<f64>) -> FlashCache {
    FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 8,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        split: match split_write_fraction {
            None => SplitPolicy::Unified,
            Some(wf) => SplitPolicy::Split { write_fraction: wf },
        },
        ..FlashCacheConfig::default()
    })
    .expect("valid config")
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64),
    Flush,
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..pages).prop_map(Op::Read),
        4 => (0..pages).prop_map(Op::Write),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of reads/writes/flushes leaves the cache's tables
    /// mutually consistent (FCHT ↔ FPST ↔ FBST ↔ region counters ↔
    /// device state).
    #[test]
    fn cache_invariants_hold_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(300), 1..400),
        write_fraction in prop_oneof![Just(None), (0.05f64..0.6).prop_map(Some)],
    ) {
        let mut cache = tiny_cache(write_fraction);
        for op in &ops {
            match *op {
                Op::Read(p) => { cache.op(CacheOp::read(p)); }
                Op::Write(p) => { cache.op(CacheOp::write(p)); }
                Op::Flush => { cache.flush_writes(); }
            }
        }
        cache.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant violated: {e}"))
        })?;
        // A read after the sequence always succeeds (hit or clean miss).
        let out = cache.op(CacheOp::read(0)).access;
        prop_assert!(out.hit || out.needs_disk_read);
    }

    /// Reading back immediately after a successful write always hits:
    /// the cache never loses an acknowledged write without reporting a
    /// flush or bypass.
    #[test]
    fn write_then_read_hits(
        warm in prop::collection::vec(op_strategy(200), 0..200),
        page in 0u64..200,
    ) {
        let mut cache = tiny_cache(Some(0.25));
        for op in &warm {
            match *op {
                Op::Read(p) => { cache.op(CacheOp::read(p)); }
                Op::Write(p) => { cache.op(CacheOp::write(p)); }
                Op::Flush => { cache.flush_writes(); }
            }
        }
        let w = cache.op(CacheOp::write(page)).access;
        if !w.bypassed {
            prop_assert!(cache.op(CacheOp::read(page)).access.hit, "acknowledged write must be readable");
        }
    }

    /// The real page codec corrects any error pattern up to its strength
    /// regardless of where the errors land.
    #[test]
    fn page_codec_corrects_within_strength(
        t in 1usize..=6,
        seed_byte in 0u8..=255,
        positions in prop::collection::btree_set(0usize..PAGE_DATA_BYTES * 8, 0..=6),
    ) {
        prop_assume!(positions.len() <= t);
        let codec = PageCodec::new(t).unwrap();
        let original: Vec<u8> = (0..PAGE_DATA_BYTES)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed_byte))
            .collect();
        let spare = codec.encode(&original);
        let mut corrupted = original.clone();
        for &bit in &positions {
            corrupted[bit / 8] ^= 1 << (7 - bit % 8);
        }
        let outcome = codec.decode(&mut corrupted, &spare);
        prop_assert!(outcome.is_ok(), "{} errors at t={} must decode", positions.len(), t);
        prop_assert_eq!(corrupted, original);
    }

    /// The lifetime model is scale-consistent: accelerating by a·b is
    /// the same as accelerating by a then by b.
    #[test]
    fn acceleration_composes(
        a in 1.0f64..1e4,
        b in 1.0f64..1e4,
        p in 1e-6f64..0.999,
    ) {
        let m = CellLifetimeModel::default();
        let once = m.accelerated(a * b).quantile(p);
        let twice = m.accelerated(a).accelerated(b).quantile(p);
        prop_assert!((once / twice - 1.0).abs() < 1e-9);
    }
}
