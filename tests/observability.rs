//! End-to-end observability: a seeded workload replayed through the
//! full hierarchy must produce a JSON snapshot that (a) parses with the
//! crate's own parser, (b) is internally consistent — counters
//! reconcile with each other and with the event trace — and (c) is
//! byte-identical across two runs at the same seed.

use std::sync::Arc;

use flashcache::nand::{FlashConfig, FlashGeometry, WearConfig};
use flashcache::obs::{json, EventKind, ObsSink};
use flashcache::sim::hierarchy::{Hierarchy, HierarchyConfig};
use flashcache::{ControllerPolicy, FlashCacheConfig, ObsSink as FacadeSink, WorkloadSpec};

const REQUESTS: u64 = 20_000;

/// A small, heavily worn flash cache so GC, wear-levelling and the
/// programmable controller all fire within a short run.
fn obs_flash() -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 32,
                pages_per_block: 16,
                ..FlashGeometry::default()
            },
            wear: WearConfig::default().accelerated(2e5),
            ..FlashConfig::default()
        },
        controller: ControllerPolicy::Programmable,
        ..FlashCacheConfig::default()
    }
}

/// Runs the seeded workload with an explicitly attached sink and
/// returns the snapshot JSON.
fn run_snapshot(seed: u64) -> String {
    let sink = Arc::new(ObsSink::with_capacity(64));
    let mut hierarchy = Hierarchy::new(HierarchyConfig {
        dram_bytes: 256 * 2048,
        flash: Some(obs_flash()),
        ..HierarchyConfig::default()
    });
    hierarchy.attach_sink(Arc::clone(&sink));
    let workload = WorkloadSpec::dbt2().scaled(1024);
    let mut generator = workload.generator(seed);
    for _ in 0..REQUESTS {
        hierarchy.submit(generator.next_request());
    }
    hierarchy.drain();
    hierarchy.obs_snapshot().to_json()
}

fn counter(doc: &json::JsonValue, name: &str) -> u64 {
    doc.get("metrics")
        .and_then(|m| m.get(name))
        .and_then(json::JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing counter `{name}`"))
}

fn event_count(doc: &json::JsonValue, kind: EventKind) -> u64 {
    doc.get("events")
        .and_then(|e| e.get("counts"))
        .and_then(|c| c.get(kind.name()))
        .and_then(json::JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing event count `{}`", kind.name()))
}

#[test]
fn snapshot_parses_and_reconciles() {
    let raw = run_snapshot(0x1507_2008);
    let doc = json::parse(&raw).expect("snapshot must parse with the crate's own parser");

    assert_eq!(
        doc.get("version").and_then(json::JsonValue::as_u64),
        Some(1)
    );

    // The run actually exercised the stack.
    assert_eq!(counter(&doc, "hierarchy.requests"), REQUESTS);
    let reads = counter(&doc, "flash.reads");
    assert!(reads > 0, "flash saw no reads");
    assert_eq!(
        reads,
        counter(&doc, "flash.read_hits") + counter(&doc, "flash.read_misses")
    );
    assert!(counter(&doc, "nand.reads") > 0);
    assert!(counter(&doc, "flash.erases") > 0, "no GC in a worn cache?");

    // Event counts reconcile with the stats counters (Figure 11's
    // breakdown): every erase, ECC bump and density reconfiguration
    // emitted exactly one event.
    assert_eq!(
        event_count(&doc, EventKind::BlockErased),
        counter(&doc, "flash.erases")
    );
    assert_eq!(
        event_count(&doc, EventKind::EccStrengthBump),
        counter(&doc, "flash.reconfig_ecc")
    );
    assert_eq!(
        event_count(&doc, EventKind::DensityMlcToSlc) + event_count(&doc, EventKind::HotPromotion),
        counter(&doc, "flash.reconfig_density")
    );
    assert_eq!(
        event_count(&doc, EventKind::WearMigration),
        counter(&doc, "flash.wear_migrations")
    );

    // The trace is bounded but the counts are exact.
    let events = doc.get("events").unwrap();
    let total = events
        .get("total")
        .and_then(json::JsonValue::as_u64)
        .unwrap();
    let dropped = events
        .get("dropped")
        .and_then(json::JsonValue::as_u64)
        .unwrap();
    let trace_len = events
        .get("trace")
        .and_then(json::JsonValue::as_array)
        .unwrap()
        .len() as u64;
    assert_eq!(total, trace_len + dropped);
    let counted: u64 = EventKind::ALL.iter().map(|k| event_count(&doc, *k)).sum();
    assert_eq!(counted, total);
}

#[test]
fn snapshots_are_byte_identical_at_fixed_seed() {
    let a = run_snapshot(42);
    let b = run_snapshot(42);
    assert_eq!(a, b, "same seed must produce byte-identical snapshots");
}

#[test]
fn facade_re_exports_the_sink_type() {
    // `flashcache::ObsSink` and `flashcache::obs::ObsSink` are the same
    // type; a sink built through either observes the same caches.
    let _same: Arc<FacadeSink> = Arc::new(ObsSink::with_capacity(4));
}
