//! Property and storm tests for the admission/longevity stage.
//!
//! The load-bearing contract: `AdmitAll` with a single longevity bucket
//! is the paper-faithful oracle — a cache configured that way explicitly
//! must be byte-identical to a default-configured cache on any trace.
//! On top of that, structural invariants must survive every policy and
//! bucket count, and `WriteCap` must actually bound the admitted write
//! bytes while leaving read caching untouched.

use proptest::prelude::*;

use flashcache::core::AdmissionPolicyConfig;
use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::{CacheOp, FlashCache, FlashCacheConfig};

fn small_config() -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 16,
                pages_per_block: 8,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64),
    Flush,
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..pages).prop_map(Op::Read),
        4 => (0..pages).prop_map(Op::Write),
        1 => Just(Op::Flush),
    ]
}

fn apply(cache: &mut FlashCache, op: Op) {
    match op {
        Op::Read(p) => {
            cache.op(CacheOp::read(p));
        }
        Op::Write(p) => {
            cache.op(CacheOp::write(p));
        }
        Op::Flush => {
            cache.flush_writes();
        }
    }
}

fn policy_strategy() -> impl Strategy<Value = AdmissionPolicyConfig> {
    prop_oneof![
        Just(AdmissionPolicyConfig::AdmitAll),
        (1u8..4, 16u64..2048)
            .prop_map(|(k, window)| AdmissionPolicyConfig::ReReference { k, window }),
        (1u64..64, 16u64..2048, any::<bool>()).prop_map(|(pages_per_window, window, coalesce)| {
            AdmissionPolicyConfig::WriteCap {
                pages_per_window,
                window,
                coalesce,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The admission gate held shut is invisible: explicitly configuring
    /// `AdmitAll` + 1 longevity bucket produces the same snapshot, stats
    /// and telemetry registry as the untouched default config.
    #[test]
    fn admit_all_single_bucket_is_the_identity(
        ops in prop::collection::vec(op_strategy(300), 1..400),
    ) {
        let mut default_cache = FlashCache::new(small_config()).unwrap();
        let mut explicit = small_config();
        explicit.admission = AdmissionPolicyConfig::AdmitAll;
        explicit.longevity_buckets = 1;
        let mut explicit_cache = FlashCache::new(explicit).unwrap();
        for &op in &ops {
            apply(&mut default_cache, op);
            apply(&mut explicit_cache, op);
        }
        prop_assert_eq!(default_cache.snapshot(), explicit_cache.snapshot());
        prop_assert_eq!(default_cache.stats(), explicit_cache.stats());
        prop_assert_eq!(default_cache.export_metrics(), explicit_cache.export_metrics());
    }

    /// Under `AdmitAll` the new counters never move.
    #[test]
    fn admit_all_never_rejects(
        ops in prop::collection::vec(op_strategy(200), 1..200),
    ) {
        let mut cache = FlashCache::new(small_config()).unwrap();
        for &op in &ops {
            apply(&mut cache, op);
        }
        let s = cache.stats();
        prop_assert_eq!(s.admission_rejected_fills, 0);
        prop_assert_eq!(s.admission_rejected_writes, 0);
        prop_assert_eq!(s.admission_coalesced_writes, 0);
    }

    /// Structural invariants hold for every policy × bucket-count combo
    /// under arbitrary op sequences.
    #[test]
    fn invariants_hold_under_any_policy(
        ops in prop::collection::vec(op_strategy(300), 1..400),
        policy in policy_strategy(),
        buckets in 1u32..6,
    ) {
        let mut config = small_config();
        config.admission = policy;
        config.longevity_buckets = buckets;
        let mut cache = FlashCache::new(config).unwrap();
        for &op in &ops {
            apply(&mut cache, op);
        }
        cache.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant violated: {e}"))
        })?;
        // The cache still serves after the sequence.
        let out = cache.op(CacheOp::read(0)).access;
        prop_assert!(out.hit || out.needs_disk_read);
    }
}

/// A write storm cannot push more than the cap's allowance into flash,
/// and the pages cached by reads beforehand keep hitting throughout.
#[test]
fn write_cap_bounds_flash_write_bytes_under_storm() {
    const CAP: u64 = 8;
    const WINDOW: u64 = 128;
    let mut config = small_config();
    config.admission = AdmissionPolicyConfig::WriteCap {
        pages_per_window: CAP,
        window: WINDOW,
        coalesce: false,
    };
    let mut cache = FlashCache::new(config).unwrap();
    let page_bytes = u64::from(cache.device().geometry().page_data_bytes);

    // Pre-fill a handful of read pages (fills are never capped)...
    let warm: Vec<u64> = (0..8).collect();
    for &p in &warm {
        cache.op(CacheOp::read(p));
        assert!(cache.op(CacheOp::read(p)).access.hit);
    }
    assert_eq!(cache.stats().admission_bytes_written, 0, "fills are free");

    // ...then storm distinct pages far beyond the cap.
    for p in 0..4_000u64 {
        cache.op(CacheOp::write(1_000 + p));
    }
    let s = cache.stats();
    // Token-bucket allowance: one refill per touched window plus the
    // initial grant bounds the admitted write bytes.
    let windows = cache.tick() / WINDOW + 1;
    let allowance_bytes = windows * CAP * page_bytes;
    assert!(
        s.admission_bytes_written <= allowance_bytes,
        "cap breached: {} bytes admitted, allowance {}",
        s.admission_bytes_written,
        allowance_bytes
    );
    assert!(
        s.admission_rejected_writes > 3_000,
        "most storm writes must bounce: {} rejected",
        s.admission_rejected_writes
    );

    // The read working set survived the storm.
    for &p in &warm {
        assert!(
            cache.op(CacheOp::read(p)).access.hit,
            "pre-filled page {p} must still hit after the storm"
        );
    }
    cache.check_invariants().unwrap();
}
