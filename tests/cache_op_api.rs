//! Differential tests for the unified cache-op API: the deprecated
//! `read`/`write`/`try_read`/`try_write` entry points are thin shims
//! over [`FlashCache::op`], so driving two identically-configured
//! caches — one through the shims, one through ops — must produce
//! byte-identical outcomes, snapshots, stats, and telemetry registries.

#![allow(deprecated)] // legacy entry-point shims are intentionally exercised

use flashcache::core::AdmissionPolicyConfig;
use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::{CacheOp, FlashCache, FlashCacheConfig};

fn small_config() -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 16,
                pages_per_block: 8,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    }
}

/// Deterministic mixed trace: Zipf-ish revisits plus a cold tail.
fn trace(len: u64) -> impl Iterator<Item = (bool, u64)> {
    (0..len).map(|i| {
        let is_write = i % 3 == 1;
        let page = if i % 4 == 0 { i % 7 } else { (i * 31) % 200 };
        (is_write, page)
    })
}

#[test]
fn shims_and_ops_are_byte_identical() {
    let mut shimmed = FlashCache::new(small_config()).unwrap();
    let mut opped = FlashCache::new(small_config()).unwrap();
    for (is_write, page) in trace(4_000) {
        let (a, b) = if is_write {
            (shimmed.write(page), opped.op(CacheOp::write(page)).access)
        } else {
            (shimmed.read(page), opped.op(CacheOp::read(page)).access)
        };
        assert_eq!(a, b, "outcome diverged at page {page} (write={is_write})");
    }
    assert_eq!(shimmed.flush_writes(), opped.flush_writes());
    assert_eq!(shimmed.snapshot(), opped.snapshot());
    assert_eq!(shimmed.stats(), opped.stats());
    assert_eq!(shimmed.export_metrics(), opped.export_metrics());
    shimmed.check_invariants().unwrap();
    opped.check_invariants().unwrap();
}

#[test]
fn try_shims_match_try_op() {
    let mut shimmed = FlashCache::new(small_config()).unwrap();
    let mut opped = FlashCache::new(small_config()).unwrap();
    for (is_write, page) in trace(1_000) {
        let (a, b) = if is_write {
            (
                shimmed.try_write(page).unwrap(),
                opped.try_op(CacheOp::write(page)).unwrap().access,
            )
        } else {
            (
                shimmed.try_read(page).unwrap(),
                opped.try_op(CacheOp::read(page)).unwrap().access,
            )
        };
        assert_eq!(a, b, "try outcome diverged at page {page}");
    }
    assert_eq!(shimmed.snapshot(), opped.snapshot());
    assert_eq!(shimmed.stats(), opped.stats());
}

#[test]
fn outcome_reports_admission_decisions() {
    use flashcache::AdmissionDecision;

    // Default (AdmitAll): fills and writes are admitted; flash read
    // hits never reach the admission stage.
    let mut cache = FlashCache::new(small_config()).unwrap();
    assert_eq!(
        cache.op(CacheOp::read(3)).admission,
        AdmissionDecision::Admitted,
        "cold fill is admitted"
    );
    assert_eq!(
        cache.op(CacheOp::read(3)).admission,
        AdmissionDecision::NotApplicable,
        "flash hit bypasses admission"
    );
    assert_eq!(
        cache.op(CacheOp::write(4)).admission,
        AdmissionDecision::Admitted
    );
    assert_eq!(cache.stats().admission_rejected_fills, 0);
    assert_eq!(cache.stats().admission_rejected_writes, 0);

    // ReReference: the first touch of a page is rejected.
    let mut config = small_config();
    config.admission = AdmissionPolicyConfig::ReReference { k: 1, window: 1024 };
    let mut cache = FlashCache::new(config).unwrap();
    let first = cache.op(CacheOp::read(9));
    assert_eq!(first.admission, AdmissionDecision::Rejected);
    assert!(first.access.needs_disk_read, "rejected fill still serves");
    assert!(!first.access.hit);
    let second = cache.op(CacheOp::read(9));
    assert_eq!(second.admission, AdmissionDecision::Admitted);
    assert_eq!(cache.stats().admission_rejected_fills, 1);

    // WriteCap with coalescing: a dirty overwrite is absorbed in place.
    let mut config = small_config();
    config.admission = AdmissionPolicyConfig::WriteCap {
        pages_per_window: 64,
        window: 1024,
        coalesce: true,
    };
    let mut cache = FlashCache::new(config).unwrap();
    assert_eq!(
        cache.op(CacheOp::write(5)).admission,
        AdmissionDecision::Admitted
    );
    let again = cache.op(CacheOp::write(5));
    assert_eq!(again.admission, AdmissionDecision::Coalesced);
    assert!(again.access.hit, "coalesced overwrite is a flash hit");
    assert_eq!(cache.stats().admission_coalesced_writes, 1);
}

#[test]
fn cache_op_constructors_roundtrip() {
    use flashcache::CacheOpKind;

    let r = CacheOp::read(42);
    assert_eq!(r.lba, 42);
    assert_eq!(r.kind, CacheOpKind::Read);
    let w = CacheOp::write(7);
    assert_eq!(w.kind, CacheOpKind::Write);
    let ctx = flashcache::nand::OpContext::background();
    assert_eq!(w.with_ctx(ctx).ctx, ctx);
}
