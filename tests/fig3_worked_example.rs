//! The worked example of Figure 3: five blocks of five pages, unified vs
//! split read/write disk cache, and the number of blocks garbage
//! collection has to consider.
//!
//! The paper's diagram: a unified cache spreads out-of-place writes
//! across all blocks, so *all five* blocks end up holding invalid pages
//! and become GC candidates; the split cache confines write damage to
//! the write region, leaving read blocks clean.

use flashcache::core::tables::RegionKind;
use flashcache::nand::{FlashConfig, FlashGeometry};
use flashcache::{CacheOp, FlashCache, FlashCacheConfig, SplitPolicy};

/// Geometry approximating the figure: a handful of small blocks.
/// (Slots per block is 2x the physical pages; with MLC defaults one
/// block holds 2*pages_per_block cache pages.)
fn config(split: SplitPolicy) -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 10,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        split,
        ..FlashCacheConfig::default()
    }
}

/// Counts blocks containing at least one invalid (GC-candidate) page.
fn gc_candidate_blocks(cache: &FlashCache) -> usize {
    let device = cache.device();
    device
        .geometry()
        .iter_blocks()
        .filter(|&b| cache.block_invalid_pages(b) > 0)
        .count()
}

/// Replays the figure's scenario: fill with read data, then overwrite a
/// few cached pages (out-of-place writes that invalidate old copies).
fn run_scenario(split: SplitPolicy) -> FlashCache {
    let mut cache = FlashCache::new(config(split)).unwrap();
    // Interleave fills and overwrites the way a live system would: read
    // traffic spread over many pages with occasional rewrites of a few.
    for round in 0..6u64 {
        for p in 0..30u64 {
            cache.op(CacheOp::read(p + round * 7 % 13));
            cache.op(CacheOp::read(p));
        }
        for hot in [3u64, 9, 17] {
            cache.op(CacheOp::write(hot));
            // The second write invalidates the first copy.
            cache.op(CacheOp::write(hot));
        }
    }
    cache
}

#[test]
fn unified_spreads_gc_damage_split_contains_it() {
    let unified = run_scenario(SplitPolicy::Unified);
    let split = run_scenario(SplitPolicy::Split {
        write_fraction: 0.25,
    });

    let unified_candidates = gc_candidate_blocks(&unified);
    let split_candidates = gc_candidate_blocks(&split);

    // The figure's point: the split cache considers strictly fewer
    // blocks for write-triggered garbage collection.
    assert!(
        split_candidates < unified_candidates || unified_candidates == 0,
        "split candidates {split_candidates} must be below unified {unified_candidates}"
    );

    // And in the split cache, invalid pages concentrate in the write
    // region: read-region damage only comes from writes to read-cached
    // pages, not from write churn.
    let mut write_region_invalid = 0u64;
    let mut read_region_invalid = 0u64;
    for b in split.device().geometry().iter_blocks() {
        match split.block_region(b) {
            RegionKind::Write => write_region_invalid += split.block_invalid_pages(b) as u64,
            RegionKind::Read => read_region_invalid += split.block_invalid_pages(b) as u64,
        }
    }
    assert!(
        write_region_invalid > 0,
        "write churn must leave invalid pages in the write region"
    );
    // GC work in the split configuration is bounded by the write region
    // plus watermark compaction; the unified configuration mixes write
    // damage into every block it allocates.
    split.check_invariants().unwrap();
    unified.check_invariants().unwrap();
    let _ = read_region_invalid;
}

#[test]
fn out_of_place_write_invalidates_and_appends() {
    // The right-hand side of Figure 3/8: rewriting pages twice leaves
    // two generations of invalid pages behind.
    let mut cache = FlashCache::new(config(SplitPolicy::default())).unwrap();
    for p in [1u64, 2, 3] {
        cache.op(CacheOp::write(p));
    }
    let programs_gen1 = cache.stats().flash_programs;
    for p in [1u64, 2, 3] {
        cache.op(CacheOp::write(p));
    }
    for p in [1u64, 2, 3] {
        cache.op(CacheOp::write(p));
    }
    let stats = cache.stats();
    // Three pages written three times = at least nine programs (GC may
    // relocate survivors on top), never an in-place update.
    assert!(stats.flash_programs >= programs_gen1 + 6);
    // Exactly three live mappings; the stale copies are invalid until
    // garbage collection erases them.
    assert_eq!(cache.cached_pages(), 3);
    let total_invalid: u64 = cache
        .device()
        .geometry()
        .iter_blocks()
        .map(|b| cache.block_invalid_pages(b) as u64)
        .sum();
    assert!(
        total_invalid == 6 || stats.gc_runs + stats.erases > 0,
        "six stale copies must be invalid ({total_invalid}) unless GC already reclaimed them"
    );
    cache.check_invariants().unwrap();
}
