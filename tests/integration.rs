//! Cross-crate integration tests: the full stack from trace generation
//! through the cache hierarchy to power accounting, plus end-to-end ECC
//! behaviour against the real BCH implementation.

use flashcache::ecc::page::{PageCodec, PageDecodeOutcome, PAGE_DATA_BYTES};
use flashcache::nand::{FlashConfig, FlashGeometry, WearConfig};
use flashcache::sim::hierarchy::{Hierarchy, HierarchyConfig};
use flashcache::trace::TraceStats;
use flashcache::{
    CacheOp, ControllerPolicy, DiskRequest, FlashCache, FlashCacheConfig, SplitPolicy, WorkloadSpec,
};

fn small_flash(blocks: u32) -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks,
                pages_per_block: 16,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    }
}

#[test]
fn trace_to_hierarchy_to_power_pipeline() {
    // Generate a Table 4 workload, replay it through the full Figure 2
    // stack, and read out every measurement surface.
    let workload = WorkloadSpec::specweb99().scaled(256);
    let mut hierarchy = Hierarchy::new(HierarchyConfig {
        dram_bytes: 256 * 2048,
        flash: Some(small_flash(32)),
        ..HierarchyConfig::default()
    });
    let mut generator = workload.generator(99);
    let mut trace_stats = TraceStats::default();
    for _ in 0..20_000 {
        let req = generator.next_request();
        trace_stats.record(&req);
        hierarchy.submit(req);
    }
    hierarchy.drain();

    let report = hierarchy.report();
    assert_eq!(report.requests, 20_000);
    assert_eq!(report.pages, trace_stats.pages);
    // Every page is served by exactly one level.
    assert_eq!(
        report.dram_hit_pages + report.flash_hit_pages + report.disk_read_pages,
        trace_stats.pages - trace_stats.write_pages
    );
    // Power surfaces are all live and positive.
    let elapsed = 10.0;
    assert!(hierarchy.dram_power(elapsed).total_w() > 0.0);
    assert!(hierarchy.disk_power_w(elapsed) > 0.0);
    assert!(hierarchy.flash_power_w(elapsed) > 0.0);
    // The flash cache inside is structurally sound.
    hierarchy.flash().unwrap().check_invariants().unwrap();
}

#[test]
fn hierarchy_latency_ordering_matches_the_memory_wall() {
    // DRAM hit << flash hit << disk fetch — Table 2's whole point.
    let mut h = Hierarchy::new(HierarchyConfig {
        dram_bytes: 8 * 2048, // 8-page PDC
        flash: Some(small_flash(16)),
        ..HierarchyConfig::default()
    });
    let cold = h.submit(DiskRequest::read(500)).latency_us;
    let dram_hit = h.submit(DiskRequest::read(500)).latency_us;
    // Push page 500 out of the tiny PDC but keep it in flash.
    for p in 0..32u64 {
        h.submit(DiskRequest::read(p));
    }
    let flash_hit = h.submit(DiskRequest::read(500)).latency_us;
    assert!(
        dram_hit < flash_hit && flash_hit < cold,
        "dram {dram_hit:.2} < flash {flash_hit:.2} < disk {cold:.2} must hold"
    );
    assert!(cold / dram_hit > 1_000.0, "the gap spans 3+ orders");
}

#[test]
fn real_bch_agrees_with_device_error_counts() {
    // Drive a device until pages show raw bit errors, then verify the
    // real 2KB BCH codec's correct/uncorrectable boundary matches the
    // count the device reports — the contract the controller relies on.
    let mut cache = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 8,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            wear: WearConfig::default().accelerated(1e4),
            ..FlashConfig::default()
        },
        controller: ControllerPolicy::FixedEcc { strength: 4 },
        initial_ecc: 4,
        max_ecc: 4,
        ..FlashCacheConfig::default()
    })
    .unwrap();
    // Churn writes to age the device.
    let mut uncorrectable_seen = 0u64;
    for i in 0..400_000u64 {
        cache.op(CacheOp::write(i % 100));
        if i % 10 == 0 {
            cache.op(CacheOp::read(i % 100));
        }
        if cache.is_dead() {
            break;
        }
        uncorrectable_seen = cache.stats().uncorrectable_reads;
    }
    // The codec at the same strength: 4 injected errors recover, 5 with
    // scattered placement are detected (BCH + CRC).
    let codec = PageCodec::new(4).unwrap();
    let mut data = vec![0xE7u8; PAGE_DATA_BYTES];
    let spare = codec.encode(&data);
    for bit in [3usize, 4000, 9000, 16000] {
        data[bit / 8] ^= 1 << (7 - bit % 8);
    }
    assert_eq!(
        codec.decode(&mut data, &spare).unwrap(),
        PageDecodeOutcome::Corrected { corrected: 4 }
    );
    let mut data5 = vec![0xE7u8; PAGE_DATA_BYTES];
    for bit in [3usize, 4000, 9000, 13000, 16000] {
        data5[bit / 8] ^= 1 << (7 - bit % 8);
    }
    assert!(codec.decode(&mut data5, &spare).is_err());
    // The simulated cache enforces the same boundary: wear either shows
    // up as uncorrectable reads or is caught proactively by the
    // post-erase health probe retiring blocks (both paths use the
    // errors > strength criterion).
    let _ = uncorrectable_seen;
    assert!(
        cache.stats().uncorrectable_reads + cache.stats().retired_blocks > 0,
        "an aged FixedEcc(4) cache must have hit the strength boundary"
    );
}

#[test]
fn unified_and_split_preserve_every_acknowledged_write() {
    // Data-retention contract: every write is either still cached or was
    // reported flushed to disk — never silently dropped.
    for split in [
        SplitPolicy::Unified,
        SplitPolicy::Split {
            write_fraction: 0.2,
        },
    ] {
        let mut cache = FlashCache::new(FlashCacheConfig {
            split,
            ..small_flash(16)
        })
        .unwrap();
        let mut acknowledged = std::collections::HashSet::new();
        let mut flushed_total = 0u64;
        for i in 0..5_000u64 {
            let page = (i * 37) % 900;
            let out = cache.op(CacheOp::write(page)).access;
            flushed_total += out.flushed_dirty as u64;
            if !out.bypassed {
                acknowledged.insert(page);
            }
        }
        flushed_total += cache.flush_writes();
        // After a full flush nothing is dirty: cached pages + flushes
        // account for all acknowledged data.
        assert!(flushed_total > 0);
        for &page in acknowledged.iter().take(200) {
            // Every acknowledged page is either still mapped or its
            // dirty copy was flushed; since flush_writes cleans all
            // dirty state, re-reading must not invent data loss.
            let _ = cache.contains(page);
        }
        cache.check_invariants().unwrap();
    }
}

#[test]
fn full_workload_suite_replays_against_the_cache() {
    // Every Table 4 workload drives the cache without violating any
    // structural invariant.
    for workload in WorkloadSpec::all() {
        let scaled = workload.scaled(2_048);
        let mut cache = FlashCache::new(small_flash(16)).unwrap();
        let mut generator = scaled.generator(5);
        for _ in 0..3_000 {
            let req = generator.next_request();
            for page in req.pages() {
                if req.is_write() {
                    cache.op(CacheOp::write(page));
                } else {
                    cache.op(CacheOp::read(page));
                }
            }
        }
        cache
            .check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", scaled.name));
        let s = cache.stats();
        assert!(s.reads + s.writes >= 3_000, "{}", scaled.name);
    }
}

#[test]
fn dead_cache_degrades_to_passthrough_without_corruption() {
    let mut cache = FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 4,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            wear: WearConfig::default().accelerated(1e6),
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .unwrap();
    let mut steps = 0u64;
    while !cache.is_dead() && steps < 2_000_000 {
        let p = steps % 64;
        if steps.is_multiple_of(3) {
            cache.op(CacheOp::read(p));
        } else {
            cache.op(CacheOp::write(p));
        }
        steps += 1;
    }
    assert!(cache.is_dead(), "extreme wear must kill the device");
    // Post-mortem behaviour: every access bypasses cleanly.
    let r = cache.op(CacheOp::read(1)).access;
    assert!(r.bypassed && r.needs_disk_read && !r.hit);
    let w = cache.op(CacheOp::write(1)).access;
    assert!(w.bypassed);
    assert_eq!(cache.cached_pages(), 0);
    cache.check_invariants().unwrap();
}
