//! Replay fast-path guarantees, end to end:
//!
//! * fixed-seed determinism — two identical runs produce byte-identical
//!   metric snapshots and identical hierarchy reports, with the fast
//!   gates on *and* with the slow oracles forced;
//! * the O(1) alias sampler draws from the same distribution as the
//!   binary-search CDF oracle (two-sample chi-square);
//! * cached wear evaluation observes the same failure counts as the
//!   direct evaluation at every erase-count crossing.

use rand::rngs::StdRng;
use rand::SeedableRng;

use flashcache::nand::{
    CellMode, FlashConfig, FlashGeometry, PageWearState, WearConfig, WearModel,
};
use flashcache::sim::hierarchy::{Hierarchy, HierarchyConfig};
use flashcache::trace::{Popularity, PopularitySampler};
use flashcache::{FlashCacheConfig, WorkloadSpec};

const REQUESTS: u64 = 20_000;

/// A small, worn flash tier so GC and the wear model both fire.
fn flash_config(fast: bool) -> FlashCacheConfig {
    FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks: 32,
                pages_per_block: 16,
                ..FlashGeometry::default()
            },
            wear: WearConfig {
                cache_evaluations: fast,
                ..WearConfig::default()
            }
            .accelerated(2e5),
            fast_rng: fast,
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    }
}

/// Replays a seeded workload and returns (metrics JSON, report text).
fn replay(seed: u64, fast: bool) -> (String, String) {
    let mut hierarchy = Hierarchy::new(HierarchyConfig {
        dram_bytes: 256 * 2048,
        flash: Some(flash_config(fast)),
        ..HierarchyConfig::default()
    });
    let workload = WorkloadSpec {
        fast_sampling: fast,
        ..WorkloadSpec::financial1().scaled(512)
    };
    let mut generator = workload.generator(seed);
    for _ in 0..REQUESTS {
        hierarchy.submit(generator.next_request());
    }
    hierarchy.drain();
    let metrics = hierarchy.export_metrics().to_json().render();
    let report = format!("{:?}", hierarchy.report());
    (metrics, report)
}

#[test]
fn fast_path_replay_is_deterministic() {
    let (metrics_a, report_a) = replay(7, true);
    let (metrics_b, report_b) = replay(7, true);
    assert_eq!(
        metrics_a, metrics_b,
        "fast-path metrics must be byte-identical"
    );
    assert_eq!(report_a, report_b, "fast-path reports must be identical");
    // Different seeds must not collapse onto the same trajectory.
    let (metrics_c, _) = replay(8, true);
    assert_ne!(metrics_a, metrics_c, "seed must steer the run");
}

#[test]
fn slow_oracle_replay_is_deterministic() {
    let (metrics_a, report_a) = replay(7, false);
    let (metrics_b, report_b) = replay(7, false);
    assert_eq!(
        metrics_a, metrics_b,
        "slow-path metrics must be byte-identical"
    );
    assert_eq!(report_a, report_b, "slow-path reports must be identical");
}

/// Two-sample chi-square between the alias sampler and the CDF oracle.
/// Pages are partitioned into fixed id-range buckets; under the null
/// hypothesis (same law) the statistic is ~chi-square(buckets-1), mean
/// 63 for 64 buckets. The seeds are fixed, so this is deterministic —
/// the generous bound guards the distribution, not the noise.
fn chi_square(law: Popularity) -> f64 {
    const FOOTPRINT: u64 = 4096;
    const BUCKETS: usize = 64;
    const DRAWS: usize = 200_000;
    let sampler = PopularitySampler::new(law, FOOTPRINT, 11);
    let mut alias_rng = StdRng::seed_from_u64(101);
    let mut cdf_rng = StdRng::seed_from_u64(202);
    let per_bucket = FOOTPRINT as usize / BUCKETS;
    let mut alias_counts = [0u64; BUCKETS];
    let mut cdf_counts = [0u64; BUCKETS];
    for _ in 0..DRAWS {
        alias_counts[sampler.sample(&mut alias_rng) as usize / per_bucket] += 1;
        cdf_counts[sampler.sample_cdf(&mut cdf_rng) as usize / per_bucket] += 1;
    }
    let mut stat = 0.0;
    for (&a, &b) in alias_counts.iter().zip(&cdf_counts) {
        let total = (a + b) as f64;
        if total > 0.0 {
            let d = a as f64 - b as f64;
            stat += d * d / total;
        }
    }
    stat
}

#[test]
fn alias_sampler_matches_cdf_oracle_zipf() {
    let stat = chi_square(Popularity::Zipf { alpha: 1.2 });
    assert!(
        stat < 150.0,
        "zipf alias vs cdf chi-square too large: {stat}"
    );
}

#[test]
fn alias_sampler_matches_cdf_oracle_exponential() {
    let stat = chi_square(Popularity::Exponential { lambda: 0.01 });
    assert!(
        stat < 150.0,
        "exp alias vs cdf chi-square too large: {stat}"
    );
}

/// Cached and direct wear evaluation observe the same permanent-failure
/// counts at every erase-count crossing. The two gate settings consume
/// different RNG *streams* below onset (the direct oracle burns a
/// uniform on each negligible-lambda draw), so each crossing drives
/// both pages with freshly equal-seeded RNGs — what must agree is the
/// drawn failure count, and it does, from far below onset to deep wear.
#[test]
fn cached_wear_matches_direct_at_erase_crossings() {
    let fast_model = WearModel::new(WearConfig::default().accelerated(1e4));
    let slow_model = WearModel::new(
        WearConfig {
            cache_evaluations: false,
            ..WearConfig::default()
        }
        .accelerated(1e4),
    );
    for quality in [-0.3f64, 0.0, 0.3] {
        let mut fast_page = PageWearState::with_quality(quality);
        let mut slow_page = PageWearState::with_quality(quality);
        for (i, erases) in [1u64, 10, 50, 100, 200, 400, 800, 1_600, 3_200, 6_400]
            .into_iter()
            .enumerate()
        {
            let seed = 500 + i as u64;
            fast_page.advance(&fast_model, erases, &mut StdRng::seed_from_u64(seed));
            slow_page.advance(&slow_model, erases, &mut StdRng::seed_from_u64(seed));
            assert_eq!(
                fast_page.permanent_failures(CellMode::Mlc),
                slow_page.permanent_failures(CellMode::Mlc),
                "MLC failures diverge at {erases} erases (quality {quality})"
            );
            assert_eq!(
                fast_page.permanent_failures(CellMode::Slc),
                slow_page.permanent_failures(CellMode::Slc),
                "SLC failures diverge at {erases} erases (quality {quality})"
            );
        }
        assert!(
            fast_page.fail_mlc > 0,
            "schedule must reach real wear (quality {quality})"
        );
    }
}

/// Re-reads at an unchanged erase count are free in the cached path and
/// must not perturb the observed counts.
#[test]
fn cached_wear_rereads_are_stable() {
    let model = WearModel::new(WearConfig::default().accelerated(1e4));
    let mut rng = StdRng::seed_from_u64(9);
    let mut page = PageWearState::with_quality(0.0);
    page.advance(&model, 3_000, &mut rng);
    let (mlc, slc) = (page.fail_mlc, page.fail_slc);
    for _ in 0..1_000 {
        page.advance(&model, 3_000, &mut rng);
    }
    assert_eq!((page.fail_mlc, page.fail_slc), (mlc, slc));
}

/// The fast-path gates must default on — the bench and CI smoke assume
/// the shipped configuration is the fast one.
#[test]
fn fast_path_gates_default_on() {
    assert!(WearConfig::default().cache_evaluations);
    assert!(FlashConfig::default().fast_rng);
    assert!(WorkloadSpec::financial1().fast_sampling);
    assert!(WorkloadSpec::websearch1().fast_sampling);
}
