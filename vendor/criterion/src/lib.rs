//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external `criterion` dev-dependency is replaced by
//! this vendored micro-benchmark harness implementing the surface the
//! workspace's benches use: [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], [`BenchmarkId`], benchmark groups with
//! `sample_size`, and [`Bencher::iter`].
//!
//! Measurement model: each benchmark is warmed up, the iteration count
//! is calibrated to a target sample duration, then `sample_size`
//! samples are taken and the median per-iteration time is reported as
//! `time: [... ns ...]` — the same line shape real criterion prints, so
//! humans and scripts that grep for `time:` keep working.
//!
//! Environment knobs (both respected by CI smoke runs):
//! * `CRITERION_QUICK=1` or a `--quick` argument — one short sample per
//!   benchmark, for smoke-testing that benches still run.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    target_sample: Duration,
    warm_up: Duration,
}

impl Settings {
    fn effective(&self) -> Settings {
        if quick_mode() {
            Settings {
                sample_size: 1,
                target_sample: Duration::from_millis(2),
                warm_up: Duration::from_millis(1),
            }
        } else {
            self.clone()
        }
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            target_sample: Duration::from_millis(25),
            warm_up: Duration::from_millis(50),
        }
    }
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick")
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, &Settings::default(), &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.target_sample = d / self.settings.sample_size.max(1) as u32;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.label());
        run_bench(&name, &self.settings, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label());
        run_bench(&name, &self.settings, &mut |b: &mut Bencher| {
            b_with(b, input, &mut f)
        });
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn b_with<I: ?Sized, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input)
}

/// Identifier for one benchmark in a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to the benchmark closure; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    /// Median ns/iteration recorded by the last `iter` call.
    reported_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, storing the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Calibrate iterations per sample from the warm-up rate.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample =
            ((self.settings.target_sample.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).max(1);
        let mut samples_ns = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.reported_ns = Some(samples_ns[samples_ns.len() / 2]);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, settings: &Settings, f: &mut F) {
    let mut bencher = Bencher {
        settings: settings.effective(),
        reported_ns: None,
    };
    f(&mut bencher);
    match bencher.reported_ns {
        Some(ns) => println!(
            "{name:<50} time: [{} {} {}]",
            fmt_ns(ns),
            fmt_ns(ns),
            fmt_ns(ns)
        ),
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::from_parameter(12).label(), "12");
        assert_eq!(BenchmarkId::new("enc", 3).label(), "enc/3");
    }
}
