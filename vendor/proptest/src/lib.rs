//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external `proptest` dev-dependency is replaced by this
//! vendored mini-implementation covering exactly what the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]`);
//! * [`strategy::Strategy`] implemented for integer/float ranges,
//!   tuples, [`strategy::Just`], `prop_map`, and weighted unions via
//!   [`prop_oneof!`];
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * the `prop_assert*` family and [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! file: a failing case panics with the generated inputs' debug
//! representation left to the assertion message. Generation is
//! deterministic: the same test body sees the same case sequence on
//! every run.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude: glob-import to get the macros, [`strategy::Strategy`],
/// [`strategy::Just`], [`arbitrary::any`], the config type, and the
/// `prop` module alias.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn sum_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __runner = $crate::test_runner::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__runner.cases() {
                let mut __rng = __runner.rng_for_case(__case);
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                // The body runs in a Result-returning closure so that
                // `?`, `prop_assert*` (early Err return), and
                // `prop_assume!` (early Ok return) all work, as in real
                // proptest.
                let mut __case_body = || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                match __case_body() {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(__e) if __e.is_reject() => {
                        // prop_assume! precondition unmet: skip the case.
                    }
                    ::core::result::Result::Err(__e) => panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __runner.cases(),
                        __e
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test (early-returns a
/// [`test_runner::TestCaseError`] rather than panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __l
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a, 1 => b]`
/// picks `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in 0u32..50, (b, c) in (0u8..10, 0.0f64..1.0)) {
            prop_assert!(a < 50);
            prop_assert!(b < 10);
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn collections(v in prop::collection::vec(any::<u8>(), 2..10),
                       s in prop::collection::btree_set(0usize..100, 0..10)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            2 => (0u64..10).prop_map(|v| v * 2),
            1 => Just(99u64),
        ]) {
            prop_assert!(x == 99 || (x < 20 && x % 2 == 0));
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let mut r1 = TestRunner::new(ProptestConfig::with_cases(5), "det");
        let mut r2 = TestRunner::new(ProptestConfig::with_cases(5), "det");
        for case in 0..5 {
            let a = (0u64..1000).generate(&mut r1.rng_for_case(case));
            let b = (0u64..1000).generate(&mut r2.rng_for_case(case));
            assert_eq!(a, b);
        }
    }
}
