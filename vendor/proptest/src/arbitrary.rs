//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, Standard};

/// Strategy generating any value of `T` (uniform over the type).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Generates arbitrary values of `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}
