//! Test-runner configuration and per-case RNG management.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single property-test case did not pass.
///
/// Returned (usually via `?` or the `prop_assert*` macros) from the
/// body that [`proptest!`](crate::proptest) wraps in a
/// `Result<(), TestCaseError>`-returning closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs failed a `prop_assume!` precondition; the case
    /// is skipped, not failed.
    Reject(String),
    /// The property does not hold for this case's inputs.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Result type of a wrapped property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named property. The name is folded into
    /// the RNG seed so different properties see different inputs while
    /// every run of the same property is identical.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xC0DE_F1A5_4CAC_4E5Eu64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// A fresh deterministic RNG for case number `case`.
    pub fn rng_for_case(&mut self, case: u32) -> TestRng {
        StdRng::seed_from_u64(self.seed ^ ((case as u64) << 32 | case as u64))
    }
}
