//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with up to `size` draws (the set
/// may be smaller after deduplication, as in real proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.min..=self.size.max);
        let mut set = BTreeSet::new();
        // Bounded retries: a narrow element domain may not support
        // `target` distinct values.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}
