//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
