//! Sequence-related random operations.

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
