//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Fast (a handful of ALU ops per draw), equidistributed in 64-bit
/// words, and deterministic per seed. Not cryptographic — none of the
/// simulation uses require that.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A minimal-state generator for replay-style hot loops: SplitMix64.
///
/// Eight bytes of state, one addition and two multiplications per
/// draw, and trivially seedable — the generator xoshiro itself uses
/// for seeding. Statistical quality is ample for simulation sampling
/// (passes BigCrush), but its single 64-bit state means shorter
/// period (2^64) and no jump-ahead, so `StdRng` remains the default;
/// `SmallRng` is opted into behind the replay fast-path gates.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // One warm-up scramble so that small consecutive seeds do not
        // produce nearly identical first outputs.
        let mut s = state;
        splitmix64(&mut s);
        SmallRng { state: s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
