//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external `rand` dependency is replaced by this
//! vendored implementation of exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`] convenience methods (`gen`, `gen_bool`, `gen_range`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic per seed, which is all the
//! simulators require. Streams differ from upstream `rand`'s ChaCha12
//! `StdRng`; no test in this workspace depends on upstream streams.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level uniform random word source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from a generator with no parameters.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn small_rng_deterministic_and_distinct_per_seed() {
        use crate::rngs::SmallRng;
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            SmallRng::seed_from_u64(1).next_u64(),
            SmallRng::seed_from_u64(2).next_u64()
        );
        // Streams are not the StdRng streams.
        assert_ne!(
            SmallRng::seed_from_u64(7).next_u64(),
            StdRng::seed_from_u64(7).next_u64()
        );
    }

    #[test]
    fn small_rng_uniform_mean() {
        use crate::rngs::SmallRng;
        let mut rng = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability_rough() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
